package shard

import (
	"errors"
	"fmt"
	"sort"
	"strconv"

	"h2tap/internal/graph"
	"h2tap/internal/htap"
	"h2tap/internal/mvto"
	"h2tap/internal/obs"
)

// Tx is a cluster-wide read-write transaction. It lazily opens one
// sub-transaction per touched shard and routes every operation to the owner
// domain via the partitioner's global↔local ID mapping. Opening against a
// Down shard is refused with a ShardDownError — one quarantined shard sheds
// exactly the traffic that touches it. Commit uses the single-shard fast
// path (today's exact commit sequence, one shard touched) or two-phase
// commit (several shards). A Tx is used by one goroutine.
type Tx struct {
	c     *Cluster
	subs  map[int]*subTx
	done  bool
	trace *obs.Req // request trace; propagated to every sub-transaction
}

// SetTrace attaches a request trace to the cluster transaction and every
// sub-transaction (open now or opened later). The caller owns the trace's
// lifetime; clear with SetTrace(nil) if the transaction outlives the request.
func (t *Tx) SetTrace(r *obs.Req) {
	t.trace = r
	for _, s := range t.subs {
		s.tx.SetTrace(r)
	}
}

// subTx pins one shard's sub-transaction to the core incarnation it was
// opened against. If the shard is recovered mid-transaction, the commit
// guard rejects publication against the superseded core.
type subTx struct {
	tx   *graph.Tx
	core *domainCore
	d    *Domain
}

// Errors.
var (
	// ErrTxDone reports an operation on a finished cluster transaction.
	ErrTxDone = errors.New("shard: transaction already finished")
)

// Begin starts a cluster transaction.
func (c *Cluster) Begin() *Tx {
	return &Tx{c: c, subs: make(map[int]*subTx)}
}

// sub returns (opening if needed) the sub-transaction on shard i, shedding
// with a ShardDownError if the shard is quarantined.
func (t *Tx) sub(i int) (*subTx, error) {
	if s, ok := t.subs[i]; ok {
		return s, nil
	}
	d := t.c.domains[i]
	if st, _ := d.Health(); st == ShardDown {
		return nil, d.downErr()
	}
	core := d.core.Load()
	s := &subTx{tx: core.store.Begin(), core: core, d: d}
	s.tx.SetTrace(t.trace)
	t.subs[i] = s
	return s, nil
}

// AddNode creates a node, placed by hashing the cluster's allocation
// sequence, and returns its global ID.
func (t *Tx) AddNode(label string, props map[string]graph.Value) (uint64, error) {
	if t.done {
		return 0, ErrTxDone
	}
	shard := t.c.part.Place(t.c.seq.Add(1))
	s, err := t.sub(shard)
	if err != nil {
		return 0, err
	}
	local, err := s.tx.AddNode(label, props)
	if err != nil {
		return 0, err
	}
	return t.c.part.Global(shard, local), nil
}

// AddRel creates a relationship src→dst and returns its global ID. The edge
// lives in the source's shard; a cross-shard destination is checked for
// existence in its home shard (a recorded read, so a concurrent delete of
// the destination conflicts) and represented locally by a ghost node.
func (t *Tx) AddRel(src, dst uint64, label string, weight float64) (uint64, error) {
	if t.done {
		return 0, ErrTxDone
	}
	p := t.c.part
	ss, ds := p.ShardOf(src), p.ShardOf(dst)
	if ss == ds {
		s, err := t.sub(ss)
		if err != nil {
			return 0, err
		}
		rid, err := s.tx.AddRel(p.Local(src), p.Local(dst), label, weight)
		if err != nil {
			return 0, err
		}
		return p.Global(ss, rid), nil
	}
	// Cross-shard: validate the destination where it lives (records the
	// read, making this transaction a participant in the destination shard),
	// then insert against the local ghost in the owner shard.
	dsub, err := t.sub(ds)
	if err != nil {
		return 0, err
	}
	if !dsub.tx.NodeExists(p.Local(dst)) {
		return 0, fmt.Errorf("%w: destination node %d", graph.ErrNotFound, dst)
	}
	ssub, err := t.sub(ss)
	if err != nil {
		return 0, err
	}
	ghost, err := t.ghostFor(ss, dst)
	if err != nil {
		return 0, err
	}
	rid, err := ssub.tx.AddRel(p.Local(src), ghost, label, weight)
	if err != nil {
		return 0, err
	}
	return p.Global(ss, rid), nil
}

// ghostFor returns a local ghost node in owner standing in for global node
// gid, creating one inside this transaction if none is usable. The registry
// keeps the latest usable ghost per (shard, gid); reverse entries accumulate
// forever so any slot ever used as a ghost stays out of the composite view.
func (t *Tx) ghostFor(owner int, gid uint64) (graph.NodeID, error) {
	c := t.c
	s, err := t.sub(owner)
	if err != nil {
		return 0, err
	}
	c.ghostMu.Lock()
	defer c.ghostMu.Unlock()
	if local, ok := c.ghostFwd[owner][gid]; ok {
		if s.tx.NodeExists(local) {
			return local, nil
		}
	}
	local, err := s.tx.AddNode(GhostLabel,
		map[string]graph.Value{GhostGIDKey: graph.Int(int64(gid))})
	if err != nil {
		return 0, err
	}
	c.ghostFwd[owner][gid] = local
	c.ghostRev[owner][local] = gid
	return local, nil
}

// DeleteRel deletes a relationship by global ID (routed to the edge-owner
// shard).
func (t *Tx) DeleteRel(rel uint64) error {
	if t.done {
		return ErrTxDone
	}
	s, err := t.sub(t.c.part.ShardOf(rel))
	if err != nil {
		return err
	}
	return s.tx.DeleteRel(t.c.part.Local(rel))
}

// DeleteNode deletes a node and, cascading, every relationship attached to
// it cluster-wide: the home-shard delete cascades local edges (including
// outgoing cross-shard edges, which live at home against ghosts), and every
// remote ghost of the node is deleted too, cascading the incoming
// cross-shard edges stored in other shards.
func (t *Tx) DeleteNode(node uint64) error {
	if t.done {
		return ErrTxDone
	}
	p := t.c.part
	home := p.ShardOf(node)
	hs, err := t.sub(home)
	if err != nil {
		return err
	}
	if err := hs.tx.DeleteNode(p.Local(node)); err != nil {
		return err
	}
	t.c.ghostMu.RLock()
	ghosts := make(map[int]graph.NodeID)
	for s := range t.c.domains {
		if s == home {
			continue
		}
		if local, ok := t.c.ghostFwd[s][node]; ok {
			ghosts[s] = local
		}
	}
	t.c.ghostMu.RUnlock()
	for s, local := range ghosts {
		gs, err := t.sub(s)
		if err != nil {
			return fmt.Errorf("cascade ghost of node %d: %w", node, err)
		}
		if !gs.tx.NodeExists(local) {
			continue // ghost never committed or already gone
		}
		if err := gs.tx.DeleteNode(local); err != nil {
			return fmt.Errorf("shard %d: cascade ghost of node %d: %w", s, node, err)
		}
	}
	return nil
}

// SetNodeProp updates one property of a node in its home shard.
func (t *Tx) SetNodeProp(node uint64, key string, val graph.Value) error {
	if t.done {
		return ErrTxDone
	}
	s, err := t.sub(t.c.part.ShardOf(node))
	if err != nil {
		return err
	}
	return s.tx.SetNodeProp(t.c.part.Local(node), key, val)
}

// GetNodeProp reads one property of a node from its home shard.
func (t *Tx) GetNodeProp(node uint64, key string) (graph.Value, error) {
	if t.done {
		return graph.Value{}, ErrTxDone
	}
	s, err := t.sub(t.c.part.ShardOf(node))
	if err != nil {
		return graph.Value{}, err
	}
	return s.tx.GetNodeProp(t.c.part.Local(node), key)
}

// NodeExists reports whether a node is visible, recording the read. A node
// on a Down shard reads as absent (the shard is shed; callers needing the
// distinction use GetNodeProp, which returns the structured error).
func (t *Tx) NodeExists(node uint64) bool {
	if t.done {
		return false
	}
	s, err := t.sub(t.c.part.ShardOf(node))
	if err != nil {
		return false
	}
	return s.tx.NodeExists(t.c.part.Local(node))
}

// Participants reports the shards this transaction has touched so far, in
// ascending order.
func (t *Tx) Participants() []int {
	parts := make([]int, 0, len(t.subs))
	for s := range t.subs {
		parts = append(parts, s)
	}
	sort.Ints(parts)
	return parts
}

// Abort rolls every sub-transaction back.
func (t *Tx) Abort() error {
	if t.done {
		return ErrTxDone
	}
	t.done = true
	var firstErr error
	for _, s := range t.subs {
		if err := s.tx.Abort(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

// shedOrRaw classifies a commit-path failure on one shard: if the shard is
// (or just became) quarantined and the error is not already structured, it
// is wrapped in a ShardDownError so callers and the server see which
// failure domain shed the write.
func shedOrRaw(d *Domain, err error) error {
	if errors.Is(err, ErrShardDown) || errors.Is(err, htap.ErrBackpressure) {
		return err
	}
	if st, _ := d.Health(); st == ShardDown {
		return &ShardDownError{Shard: d.Index, Cause: err}
	}
	return err
}

// Commit commits the transaction.
//
// One participant: the sub-transaction commits exactly as a single-shard
// transaction does today (commit gate → WAL commit record → delta capture →
// MVTO publish); no coordinator state is touched.
//
// Several participants: two-phase commit. Phase one prepares every
// participant in ascending shard order — commit gate acquired and a prepare
// record (local timestamp + operations) appended to the shard WAL, synced
// per the cluster's sync policy. The transaction is then registered with the
// stitcher's cross-transaction registry. The commit point is the decision
// record appended to the coordinator log; after it, phase two appends a
// local decision record to each participant WAL and publishes (delta capture
// + MVTO commit), releasing the gates.
//
// Participant failure: a prepare that fails — the shard was already Down,
// or the prepare append latched its WAL — aborts every participant
// (presumed abort: without a coordinator decision, recovery resolves the
// prepares to abort) and quarantines the failing shard if the failure was a
// persist error. A coordinator append failure likewise aborts (and latches
// only cross-shard commits; see CoordErr). After the coordinator's decision
// is durable the outcome is commit, unconditionally: a phase-two failure
// quarantines the failing shard but does not surface an error, because the
// prepare record plus the coordinator decision guarantee the transaction
// survives that shard's recovery.
func (t *Tx) Commit() error {
	if t.done {
		return ErrTxDone
	}
	t.done = true

	parts := t.Participants()
	switch len(parts) {
	case 0:
		return nil
	case 1:
		s := t.subs[parts[0]]
		if err := s.tx.Commit(); err != nil {
			return shedOrRaw(s.d, err)
		}
		return nil
	}

	c := t.c

	// A latched coordinator cannot durably decide: fail fast before taking
	// any commit gate.
	if err := c.CoordErr(); err != nil {
		for _, s := range t.subs {
			s.tx.Abort()
		}
		return err
	}

	gtx := c.gtx.Add(1)
	rq := t.trace
	rq.Arg("gtx", strconv.FormatUint(gtx, 10))
	prepared := make(map[int]*graph.PreparedTx, len(parts))

	abortAll := func() {
		for _, sidx := range parts {
			s := t.subs[sidx]
			if p, ok := prepared[sidx]; ok {
				p.Finish(false, func() error {
					return s.d.logDecision(s.core, gtx, false, nil)
				})
			} else {
				s.tx.Abort()
			}
		}
		// Best-effort: shrinks the in-doubt window; absence still means
		// abort.
		c.logCoordDecision(gtx, false)
	}

	// Phase one, ascending shard order (the gate-ordering discipline that
	// keeps reader wait chains acyclic against checkpoint writers).
	partTS := make(map[int]mvto.TS, len(parts))
	for _, sidx := range parts {
		s := t.subs[sidx]
		sp := rq.Span("2pc.prepare", "2pc")
		sp.Arg("shard", strconv.Itoa(sidx))
		p, err := s.tx.PrepareCommit(func(ts mvto.TS, ops []graph.LoggedOp) error {
			if gerr := s.d.guardErr(s.core); gerr != nil {
				return gerr
			}
			return s.d.logPrepare(s.core, gtx, ts, ops, rq)
		})
		sp.End()
		if err != nil {
			abortAll()
			if shed := shedOrRaw(s.d, err); shed != err {
				return shed
			}
			return fmt.Errorf("shard %d: prepare: %w", sidx, err)
		}
		prepared[sidx] = p
		partTS[sidx] = p.TS()
	}

	// Register before any half can publish, so no stitch can cut between
	// the halves from here on.
	c.reg.add(gtx, partTS)

	// Commit point: the coordinator's durable decision. An errored append is
	// treated as abort, but the record may have landed before the error (a
	// lost ack), in which case the log — the commit point — says committed;
	// the note (registered before the append so no reconcile can slip into
	// the gap) lets RecoverCoordinator settle that contradiction.
	c.noteHeuristicAbort(gtx, parts)
	sp := rq.Span("2pc.decide", "2pc")
	err := c.logCoordDecisionTraced(gtx, true, rq)
	sp.End()
	if err != nil {
		c.reg.remove(gtx)
		abortAll()
		return fmt.Errorf("%w: decision append: %v", ErrCoordinatorDown, err)
	}
	c.dropHeuristicAbort(gtx)

	// Phase two: local decision records + publication. The coordinator
	// decided commit and recovery enforces it, so a participant failure here
	// quarantines that shard (its durable state now lags its siblings) but
	// the transaction itself is committed — every participant publishes and
	// the caller gets success.
	for _, sidx := range parts {
		s := t.subs[sidx]
		sp := rq.Span("2pc.apply", "2pc")
		sp.Arg("shard", strconv.Itoa(sidx))
		prepared[sidx].Finish(true, func() error {
			return s.d.logDecision(s.core, gtx, true, rq)
		})
		sp.End()
	}
	c.reg.markDone(gtx)
	return nil
}
