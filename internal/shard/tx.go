package shard

import (
	"errors"
	"fmt"
	"sort"

	"h2tap/internal/graph"
	"h2tap/internal/mvto"
)

// Tx is a cluster-wide read-write transaction. It lazily opens one
// sub-transaction per touched shard and routes every operation to the owner
// domain via the partitioner's global↔local ID mapping. Commit uses the
// single-shard fast path (today's exact commit sequence, one shard touched)
// or two-phase commit (several shards). A Tx is used by one goroutine.
type Tx struct {
	c    *Cluster
	subs map[int]*graph.Tx
	done bool
}

// Errors.
var (
	// ErrTxDone reports an operation on a finished cluster transaction.
	ErrTxDone = errors.New("shard: transaction already finished")
)

// Begin starts a cluster transaction.
func (c *Cluster) Begin() *Tx {
	return &Tx{c: c, subs: make(map[int]*graph.Tx)}
}

// sub returns (opening if needed) the sub-transaction on shard i.
func (t *Tx) sub(i int) *graph.Tx {
	s, ok := t.subs[i]
	if !ok {
		s = t.c.domains[i].Store.Begin()
		t.subs[i] = s
	}
	return s
}

// AddNode creates a node, placed by hashing the cluster's allocation
// sequence, and returns its global ID.
func (t *Tx) AddNode(label string, props map[string]graph.Value) (uint64, error) {
	if t.done {
		return 0, ErrTxDone
	}
	shard := t.c.part.Place(t.c.seq.Add(1))
	local, err := t.sub(shard).AddNode(label, props)
	if err != nil {
		return 0, err
	}
	return t.c.part.Global(shard, local), nil
}

// AddRel creates a relationship src→dst and returns its global ID. The edge
// lives in the source's shard; a cross-shard destination is checked for
// existence in its home shard (a recorded read, so a concurrent delete of
// the destination conflicts) and represented locally by a ghost node.
func (t *Tx) AddRel(src, dst uint64, label string, weight float64) (uint64, error) {
	if t.done {
		return 0, ErrTxDone
	}
	p := t.c.part
	ss, ds := p.ShardOf(src), p.ShardOf(dst)
	if ss == ds {
		rid, err := t.sub(ss).AddRel(p.Local(src), p.Local(dst), label, weight)
		if err != nil {
			return 0, err
		}
		return p.Global(ss, rid), nil
	}
	// Cross-shard: validate the destination where it lives (records the
	// read, making this transaction a participant in the destination shard),
	// then insert against the local ghost in the owner shard.
	if !t.sub(ds).NodeExists(p.Local(dst)) {
		return 0, fmt.Errorf("%w: destination node %d", graph.ErrNotFound, dst)
	}
	ghost, err := t.ghostFor(ss, dst)
	if err != nil {
		return 0, err
	}
	rid, err := t.sub(ss).AddRel(p.Local(src), ghost, label, weight)
	if err != nil {
		return 0, err
	}
	return p.Global(ss, rid), nil
}

// ghostFor returns a local ghost node in owner standing in for global node
// gid, creating one inside this transaction if none is usable. The registry
// keeps the latest usable ghost per (shard, gid); reverse entries accumulate
// forever so any slot ever used as a ghost stays out of the composite view.
func (t *Tx) ghostFor(owner int, gid uint64) (graph.NodeID, error) {
	c := t.c
	c.ghostMu.Lock()
	defer c.ghostMu.Unlock()
	if local, ok := c.ghostFwd[owner][gid]; ok {
		if t.sub(owner).NodeExists(local) {
			return local, nil
		}
	}
	local, err := t.sub(owner).AddNode(GhostLabel,
		map[string]graph.Value{GhostGIDKey: graph.Int(int64(gid))})
	if err != nil {
		return 0, err
	}
	c.ghostFwd[owner][gid] = local
	c.ghostRev[owner][local] = gid
	return local, nil
}

// DeleteRel deletes a relationship by global ID (routed to the edge-owner
// shard).
func (t *Tx) DeleteRel(rel uint64) error {
	if t.done {
		return ErrTxDone
	}
	return t.sub(t.c.part.ShardOf(rel)).DeleteRel(t.c.part.Local(rel))
}

// DeleteNode deletes a node and, cascading, every relationship attached to
// it cluster-wide: the home-shard delete cascades local edges (including
// outgoing cross-shard edges, which live at home against ghosts), and every
// remote ghost of the node is deleted too, cascading the incoming
// cross-shard edges stored in other shards.
func (t *Tx) DeleteNode(node uint64) error {
	if t.done {
		return ErrTxDone
	}
	p := t.c.part
	home := p.ShardOf(node)
	if err := t.sub(home).DeleteNode(p.Local(node)); err != nil {
		return err
	}
	t.c.ghostMu.RLock()
	ghosts := make(map[int]graph.NodeID)
	for s := range t.c.domains {
		if s == home {
			continue
		}
		if local, ok := t.c.ghostFwd[s][node]; ok {
			ghosts[s] = local
		}
	}
	t.c.ghostMu.RUnlock()
	for s, local := range ghosts {
		if !t.sub(s).NodeExists(local) {
			continue // ghost never committed or already gone
		}
		if err := t.sub(s).DeleteNode(local); err != nil {
			return fmt.Errorf("shard %d: cascade ghost of node %d: %w", s, node, err)
		}
	}
	return nil
}

// SetNodeProp updates one property of a node in its home shard.
func (t *Tx) SetNodeProp(node uint64, key string, val graph.Value) error {
	if t.done {
		return ErrTxDone
	}
	return t.sub(t.c.part.ShardOf(node)).SetNodeProp(t.c.part.Local(node), key, val)
}

// GetNodeProp reads one property of a node from its home shard.
func (t *Tx) GetNodeProp(node uint64, key string) (graph.Value, error) {
	if t.done {
		return graph.Value{}, ErrTxDone
	}
	return t.sub(t.c.part.ShardOf(node)).GetNodeProp(t.c.part.Local(node), key)
}

// NodeExists reports whether a node is visible, recording the read.
func (t *Tx) NodeExists(node uint64) bool {
	if t.done {
		return false
	}
	return t.sub(t.c.part.ShardOf(node)).NodeExists(t.c.part.Local(node))
}

// Participants reports the shards this transaction has touched so far, in
// ascending order.
func (t *Tx) Participants() []int {
	parts := make([]int, 0, len(t.subs))
	for s := range t.subs {
		parts = append(parts, s)
	}
	sort.Ints(parts)
	return parts
}

// Abort rolls every sub-transaction back.
func (t *Tx) Abort() error {
	if t.done {
		return ErrTxDone
	}
	t.done = true
	var firstErr error
	for _, s := range t.subs {
		if err := s.Abort(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

// Commit commits the transaction.
//
// One participant: the sub-transaction commits exactly as a single-shard
// transaction does today (commit gate → WAL commit record → delta capture →
// MVTO publish); no coordinator state is touched.
//
// Several participants: two-phase commit. Phase one prepares every
// participant in ascending shard order — commit gate acquired and a prepare
// record (local timestamp + operations) appended to the shard WAL, synced
// per the cluster's sync policy. The transaction is then registered with the
// stitcher's cross-transaction registry. The commit point is the decision
// record appended to the coordinator log; after it, phase two appends a
// local decision record to each participant WAL and publishes (delta capture
// + MVTO commit), releasing the gates. Any phase-one failure — or a
// coordinator append failure — aborts every participant (presumed abort: a
// crash before the coordinator decision leaves recovery resolving the
// prepares to abort).
func (t *Tx) Commit() error {
	if t.done {
		return ErrTxDone
	}
	t.done = true

	parts := t.Participants()
	switch len(parts) {
	case 0:
		return nil
	case 1:
		return t.subs[parts[0]].Commit()
	}

	c := t.c
	gtx := c.gtx.Add(1)
	prepared := make(map[int]*graph.PreparedTx, len(parts))

	abortAll := func() {
		for _, s := range parts {
			d := c.domains[s]
			if p, ok := prepared[s]; ok {
				p.Finish(false, func() error {
					if d.wal == nil {
						return nil
					}
					return d.wal.LogDecision(gtx, false)
				})
			} else {
				t.subs[s].Abort()
			}
		}
		if c.coord != nil {
			// Best-effort: shrinks the in-doubt window; absence still means
			// abort.
			c.coord.LogDecision(gtx, false)
		}
	}

	// Phase one, ascending shard order (the gate-ordering discipline that
	// keeps reader wait chains acyclic against checkpoint writers).
	partTS := make(map[int]mvto.TS, len(parts))
	for _, s := range parts {
		d := c.domains[s]
		p, err := t.subs[s].PrepareCommit(func(ts mvto.TS, ops []graph.LoggedOp) error {
			if gerr := d.guardErr(); gerr != nil {
				return gerr
			}
			if d.wal == nil {
				return nil
			}
			return d.wal.LogPrepare(gtx, ts, ops)
		})
		if err != nil {
			abortAll()
			return fmt.Errorf("shard %d: prepare: %w", s, err)
		}
		prepared[s] = p
		partTS[s] = p.TS()
	}

	// Register before any half can publish, so no stitch can cut between
	// the halves from here on.
	c.reg.add(gtx, partTS)

	// Commit point: the coordinator's durable decision.
	if c.coord != nil {
		if err := c.coord.LogDecision(gtx, true); err != nil {
			c.reg.remove(gtx)
			abortAll()
			return fmt.Errorf("shard: coordinator decision: %w", err)
		}
	}

	// Phase two: local decision records + publication. A local decision or
	// publish hiccup no longer reverses the outcome — the coordinator
	// decided commit and recovery enforces it — so errors are surfaced but
	// every participant still publishes.
	var firstErr error
	for _, s := range parts {
		d := c.domains[s]
		err := prepared[s].Finish(true, func() error {
			if d.wal == nil {
				return nil
			}
			return d.wal.LogDecision(gtx, true)
		})
		if err != nil && firstErr == nil {
			firstErr = fmt.Errorf("shard %d: commit: %w", s, err)
		}
	}
	c.reg.markDone(gtx)
	return firstErr
}
