package shard

import (
	"sync"

	"h2tap/internal/mvto"
)

// txRegistry tracks in-flight and recently committed cross-shard
// transactions so the stitcher can verify a candidate watermark vector cuts
// none of them in half.
//
// Why the replica watermarks alone are not enough: each shard's watermark is
// bounded by its oracle's *stable* timestamp, and an unrelated older
// in-flight transaction can hold one shard's stable point below a committed
// cross-shard transaction's local timestamp while the other shard's
// watermark has already passed its half. A cut at such a vector would show
// one half of an atomically committed transaction. The registry records
// every participant's local timestamp at prepare time; a vector w is
// consistent iff for every entry the halves are uniformly below or uniformly
// at/above w (ts < w[s] implies that half is published and contained in the
// shard-s replica at w[s], because watermarks only cover finished prefixes).
type txRegistry struct {
	mu      sync.Mutex
	entries map[uint64]*crossEntry
}

type crossEntry struct {
	parts map[int]mvto.TS
	done  bool // all halves published (still needed for pruning)
}

func (r *txRegistry) init() {
	r.entries = make(map[uint64]*crossEntry)
}

// add registers a cross-shard transaction after every participant prepared,
// before any half may publish.
func (r *txRegistry) add(gtx uint64, parts map[int]mvto.TS) {
	r.mu.Lock()
	r.entries[gtx] = &crossEntry{parts: parts}
	r.mu.Unlock()
}

// remove drops an aborted transaction: no half will ever publish, so it can
// never tear a cut.
func (r *txRegistry) remove(gtx uint64) {
	r.mu.Lock()
	delete(r.entries, gtx)
	r.mu.Unlock()
}

// markDone records that every half has published.
func (r *txRegistry) markDone(gtx uint64) {
	r.mu.Lock()
	if e := r.entries[gtx]; e != nil {
		e.done = true
	}
	r.mu.Unlock()
}

// splits checks watermark vector w and returns the shards whose replicas
// still lag a transaction that is already visible in another shard's
// replica (nil means w is a consistent cut). An unpublished half always has
// ts >= w[s] — a timestamp enters a watermark only after its transaction
// finished — so in-flight entries are handled by the same rule.
//
// included, when non-nil, masks the shards participating in the cut: halves
// on excluded (Down) shards are ignored, so the barrier holds among the
// shards actually being stitched and a quarantined participant can never
// wedge the healthy rest behind an unmeetable watermark.
func (r *txRegistry) splits(w []mvto.TS, included []bool) []int {
	r.mu.Lock()
	defer r.mu.Unlock()
	var lagging map[int]bool
	for _, e := range r.entries {
		in, out := false, false
		for s, ts := range e.parts {
			if included != nil && !included[s] {
				continue
			}
			if ts < w[s] {
				in = true
			} else {
				out = true
			}
		}
		if in && out {
			for s, ts := range e.parts {
				if included != nil && !included[s] {
					continue
				}
				if ts >= w[s] {
					if lagging == nil {
						lagging = make(map[int]bool)
					}
					lagging[s] = true
				}
			}
		}
	}
	if lagging == nil {
		return nil
	}
	out := make([]int, 0, len(lagging))
	for s := range lagging {
		out = append(out, s)
	}
	return out
}

// prune drops completed entries entirely below w: every later stitch has a
// watermark vector at or above the last consistent one per shard (replica
// watermarks are monotonic), so such entries can never split again.
func (r *txRegistry) prune(w []mvto.TS) {
	r.mu.Lock()
	defer r.mu.Unlock()
	for gtx, e := range r.entries {
		if !e.done {
			continue
		}
		below := true
		for s, ts := range e.parts {
			if ts >= w[s] {
				below = false
				break
			}
		}
		if below {
			delete(r.entries, gtx)
		}
	}
}

// size reports the live entry count (tests).
func (r *txRegistry) size() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.entries)
}
