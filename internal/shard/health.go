package shard

import (
	"errors"
	"fmt"
)

// HealthState is a shard's position in the fault-domain state machine.
//
// Healthy shards serve everything. Degraded shards serve transactions and
// analytics but their replica is stale (the engine's GPU-fault ladder is in
// its degraded rung); degradation is the engine's own state and clears when
// a propagation cycle succeeds. Down shards are quarantined: their durable
// medium latched a persist failure (WAL append/rotate, delta-store persist,
// ENOSPC), so new transactions touching them are shed with ShardDownError
// and stitched analytics exclude them, while the remaining shards keep
// serving. Down clears only through Cluster.RecoverShard, which reopens the
// shard from its own WAL+checkpoint.
type HealthState int32

const (
	ShardHealthy HealthState = iota
	ShardDegraded
	ShardDown
)

// String names the state (metrics, /healthz).
func (s HealthState) String() string {
	switch s {
	case ShardDegraded:
		return "degraded"
	case ShardDown:
		return "down"
	default:
		return "healthy"
	}
}

// ErrShardDown matches any ShardDownError via errors.Is.
var ErrShardDown = errors.New("shard: shard down")

// ShardDownError reports an operation shed because its target shard is
// quarantined. Shard identifies the failure domain (for the server's 503
// detail and for targeting RecoverShard); Cause is the persist failure that
// latched it.
type ShardDownError struct {
	Shard int
	Cause error
}

func (e *ShardDownError) Error() string {
	if e.Cause == nil {
		return fmt.Sprintf("shard %d down", e.Shard)
	}
	return fmt.Sprintf("shard %d down: %v", e.Shard, e.Cause)
}

func (e *ShardDownError) Unwrap() error { return e.Cause }

// Is makes errors.Is(err, ErrShardDown) match without losing the shard
// detail.
func (e *ShardDownError) Is(target error) bool { return target == ErrShardDown }

// ErrCoordinatorDown reports a cross-shard commit refused because the
// coordinator decision log has latched a failure. Single-shard commits are
// unaffected; Cluster.RecoverCoordinator reopens the log.
var ErrCoordinatorDown = errors.New("shard: coordinator log down")

// ErrShardNotDown reports RecoverShard on a shard that is not quarantined.
var ErrShardNotDown = errors.New("shard: shard is not down")

// ErrRecoveryInProgress reports a second concurrent recovery of the same
// shard.
var ErrRecoveryInProgress = errors.New("shard: recovery already in progress")
