package shard

import (
	"fmt"
	"sort"
	"time"

	"h2tap/internal/analytics"
	"h2tap/internal/csr"
	"h2tap/internal/graph"
	"h2tap/internal/htap"
	"h2tap/internal/mvto"
	"h2tap/internal/obs"
	"h2tap/internal/sim"
)

// StitchResult is the outcome of one cross-shard analytics request executed
// on a stitched composite view.
type StitchResult struct {
	Kind htap.AnalyticsKind
	// Watermark is the per-shard freshness vector the composite was cut at:
	// the view contains exactly the transactions with local timestamp below
	// Watermark[s] in each shard, and the registry verified the cut splits no
	// cross-shard transaction.
	Watermark []mvto.TS
	// Epoch is the composite-view epoch this stitch produced.
	Epoch uint64
	// Excluded lists the Down shards this stitch left out (ascending; nil
	// when the whole cluster participated). The composite is the logical
	// graph restricted to the healthy shards: vertices homed on excluded
	// shards are absent and cross-shard edges into them are dropped.
	Excluded []int
	// GlobalIDs lists the composite's vertices (ascending global IDs; ghost
	// slots excluded). Result slices are indexed positionally by it.
	GlobalIDs []uint64
	// CSR is the stitched composite adjacency over the GlobalIDs index
	// space (consistency checks, debugging).
	CSR    *csr.CSR
	Levels []int32
	Dists  []float64
	Ranks  []float64
	Comp   []uint64
	Coef   []float64
	Work   analytics.WorkStats
	// Edges is the composite edge count; OwnedEdges its per-shard split by
	// edge owner.
	Edges      int64
	OwnedEdges []int64
	// KernelSim is the simulated device time: each shard's device executes
	// the kernel over its owned share concurrently, so the stitched kernel
	// finishes with the slowest shard.
	KernelSim sim.Duration
	// HostWall measures the host-side stitch + kernel execution.
	HostWall time.Duration
	// Attempts counts watermark acquisitions until a consistent cut.
	Attempts int
}

// stitchAttempts bounds the propagate→acquire→verify retry loop.
const stitchAttempts = 256

// RunAnalytics executes one analytics request over the whole cluster.
//
// It acquires every shard's replica (ascending shard order), checks the
// resulting watermark vector against the cross-transaction registry, and —
// if no committed cross-shard transaction is split by the cut — stitches the
// per-shard views into one composite graph keyed by global ID: ghost slots
// are dropped from the vertex set and edges pointing at ghosts are rewired
// to the real remote vertex. The composite is therefore exactly the logical
// graph at a committed prefix of every shard. On a torn cut the lagging
// shards are re-propagated and the acquisition retried.
func (c *Cluster) RunAnalytics(kind htap.AnalyticsKind, src uint64) (*StitchResult, error) {
	return c.RunAnalyticsTraced(kind, src, nil)
}

// RunAnalyticsTraced is RunAnalytics carrying a request trace: each attempt's
// propagate-on-demand freshening records a stitch.propagate span and each
// watermark acquire+verify records a stitch.barrier span, so a stitched
// request stuck retrying torn cuts is attributable from /debug/requests. The
// per-request span cap bounds what a pathological retry loop can record. rq
// may be nil.
func (c *Cluster) RunAnalyticsTraced(kind htap.AnalyticsKind, src uint64, rq *obs.Req) (*StitchResult, error) {
	if err := c.StartEngines(); err != nil {
		return nil, err
	}
	class, ok := htap.KernelClass(kind)
	if !ok {
		return nil, fmt.Errorf("%w: %q", htap.ErrUnknownAnalytics, kind)
	}

	for attempt := 1; attempt <= stitchAttempts; attempt++ {
		// Down shards are excluded from this attempt: the stitch serves the
		// healthy subgraph rather than failing the whole request. Health is
		// re-read per attempt so a quarantine (or recovery) landing between
		// retries takes effect.
		included := make([]bool, len(c.domains))
		var excluded []int
		for i, d := range c.domains {
			if st, _ := d.Health(); st == ShardDown {
				excluded = append(excluded, i)
				continue
			}
			included[i] = true
		}
		if len(excluded) == len(c.domains) {
			return nil, fmt.Errorf("shard: every shard is down: %w", ErrShardDown)
		}

		// Freshen anything stale before cutting (mirrors the single-shard
		// RunAnalytics contract: analytics see updates that arrived before
		// the request). Propagation failures degrade to the last-good
		// replica exactly as they do per-shard.
		sp := rq.Span("stitch.propagate", "stitch")
		for i, d := range c.domains {
			if included[i] && !d.Engine().Fresh() {
				d.Engine().Propagate()
			}
		}
		sp.End()

		sp = rq.Span("stitch.barrier", "stitch")
		views := make([]analytics.Graph, len(c.domains))
		w := make([]mvto.TS, len(c.domains))
		releases := make([]func(), 0, len(c.domains))
		for i, d := range c.domains {
			if !included[i] {
				continue
			}
			var rel func()
			views[i], w[i], rel = d.Engine().AcquireReplica()
			releases = append(releases, rel)
		}
		release := func() {
			for i := len(releases) - 1; i >= 0; i-- {
				releases[i]()
			}
		}

		lagging := c.reg.splits(w, included)
		sp.End()
		if lagging != nil {
			release()
			// A lagging shard's replica stops short of a transaction another
			// shard already shows. Re-propagate those shards and retry; if
			// the missing half has not published yet, the next attempts wait
			// it out.
			sp = rq.Span("stitch.propagate", "stitch")
			for _, s := range lagging {
				c.domains[s].Engine().Propagate()
			}
			sp.End()
			time.Sleep(100 * time.Microsecond)
			continue
		}

		res, err := c.stitchAndRun(views, w, kind, class, src)
		release()
		if err != nil {
			return nil, err
		}
		res.Attempts = attempt
		res.Excluded = excluded
		c.reg.prune(w)
		res.Epoch = c.epoch.Add(1)
		return res, nil
	}
	return nil, fmt.Errorf("shard: no consistent watermark cut after %d attempts", stitchAttempts)
}

// stitchAndRun builds the composite CSR from the acquired views and executes
// the kernel on it. Called with every shard's replica pinned.
func (c *Cluster) stitchAndRun(views []analytics.Graph, w []mvto.TS, kind htap.AnalyticsKind, class string, src uint64) (*StitchResult, error) {
	start := time.Now()
	p := c.part

	// Snapshot the ghost registry. Reverse entries are never removed, so a
	// slot that ever held a ghost is reliably excluded even if the ghost was
	// since deleted (its slot is then just a hole, same as any deleted node).
	rev := make([]map[graph.NodeID]uint64, len(views))
	c.ghostMu.RLock()
	for i := range rev {
		rev[i] = make(map[graph.NodeID]uint64, len(c.ghostRev[i]))
		for l, g := range c.ghostRev[i] {
			rev[i][l] = g
		}
	}
	c.ghostMu.RUnlock()

	// Composite vertex set: every non-ghost slot of every shard, by global
	// ID (excluded shards contribute nothing — their views are nil). Holes
	// (deleted or aborted nodes) keep their slot with no edges, matching
	// the single-shard replica's treatment of its own holes.
	var gids []uint64
	for s, v := range views {
		if v == nil {
			continue
		}
		n := v.NumVertexSlots()
		for l := 0; l < n; l++ {
			if _, ghost := rev[s][graph.NodeID(l)]; ghost {
				continue
			}
			gids = append(gids, p.Global(s, graph.NodeID(l)))
		}
	}
	sort.Slice(gids, func(i, j int) bool { return gids[i] < gids[j] })
	cidx := make(map[uint64]uint64, len(gids))
	for i, g := range gids {
		cidx[g] = uint64(i)
	}

	// Composite adjacency: each shard contributes the edges it owns, with
	// ghost destinations rewired to the remote vertex. Rows are sorted for
	// deterministic layout.
	type edge struct {
		dst uint64
		w   float64
	}
	rows := make([][]edge, len(gids))
	owned := make([]int64, len(views))
	var edges int64
	for i, g := range gids {
		s, l := p.ShardOf(g), p.Local(g)
		views[s].ForEachNeighbor(uint64(l), func(dst uint64, weight float64) bool {
			gdst, ok := rev[s][graph.NodeID(dst)]
			if !ok {
				gdst = p.Global(s, graph.NodeID(dst))
			}
			ci, ok := cidx[gdst]
			if !ok {
				// An edge into an excluded (Down) shard — its destination is
				// not part of this composite — or, with no exclusions,
				// unreachable under the registry invariant (an edge is only
				// visible after its destination's slot is). Dropped rather
				// than corrupting the composite.
				return true
			}
			rows[i] = append(rows[i], edge{dst: ci, w: weight})
			owned[s]++
			edges++
			return true
		})
		sort.Slice(rows[i], func(a, b int) bool { return rows[i][a].dst < rows[i][b].dst })
	}
	comp := &csr.CSR{
		Off: make([]int64, len(gids)+1),
		Col: make([]uint64, 0, edges),
		Val: make([]float64, 0, edges),
	}
	for i, r := range rows {
		for _, e := range r {
			comp.Col = append(comp.Col, e.dst)
			comp.Val = append(comp.Val, e.w)
		}
		comp.Off[i+1] = int64(len(comp.Col))
	}

	// Translate the source. A global ID outside the composite behaves like
	// an out-of-range slot in the single-shard kernels (nothing reached).
	csrc := uint64(len(gids))
	if ci, ok := cidx[src]; ok {
		csrc = ci
	}

	out, err := analytics.Run(analytics.CSRGraph{C: comp}, string(kind), csrc, c.opts.PageRankIters, c.opts.Damping)
	if err != nil {
		return nil, fmt.Errorf("shard: stitched kernel: %w", err)
	}

	res := &StitchResult{
		Kind:       kind,
		Watermark:  append([]mvto.TS(nil), w...),
		GlobalIDs:  gids,
		CSR:        comp,
		Levels:     out.Levels,
		Dists:      out.Dists,
		Ranks:      out.Ranks,
		Comp:       out.Comp,
		Coef:       out.Coef,
		Work:       out.Work,
		Edges:      edges,
		OwnedEdges: owned,
		HostWall:   time.Since(start),
	}

	// Simulated device time: each participating shard launches the kernel
	// over its owned share of the traversed work concurrently; the stitched
	// request is as slow as its slowest shard.
	if edges > 0 {
		for s, d := range c.domains {
			if views[s] == nil {
				continue
			}
			share := out.Work.Edges * float64(owned[s]) / float64(edges)
			kt, err := d.Engine().Device().Launch(class, share)
			if err != nil {
				return nil, fmt.Errorf("shard %d: kernel launch: %w", s, err)
			}
			if kt > res.KernelSim {
				res.KernelSim = kt
			}
		}
	} else {
		for s, d := range c.domains {
			if views[s] == nil {
				continue
			}
			kt, err := d.Engine().Device().Launch(class, 0)
			if err != nil {
				return nil, fmt.Errorf("shard: kernel launch: %w", err)
			}
			res.KernelSim = kt
			break
		}
	}
	return res, nil
}
