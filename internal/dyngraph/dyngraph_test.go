package dyngraph

import (
	"math/rand"
	"sort"
	"testing"

	"h2tap/internal/csr"
	"h2tap/internal/delta"
	"h2tap/internal/deltastore"
	"h2tap/internal/graph"
	"h2tap/internal/mvto"
)

func smallCSR() *csr.CSR {
	// 0→{1,2}, 1→{2}, 2→{}, 3→{}
	return &csr.CSR{
		Off: []int64{0, 2, 3, 3, 3},
		Col: []uint64{1, 2, 2},
		Val: []float64{1, 2, 3},
	}
}

func TestFromCSRRoundTrip(t *testing.T) {
	c := smallCSR()
	g := FromCSR(c)
	if g.NumVertexSlots() != 4 || g.NumEdges() != 3 {
		t.Fatalf("dims = %d/%d", g.NumVertexSlots(), g.NumEdges())
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if !csr.Equal(g.ToCSR(), c) {
		t.Fatal("CSR round trip mismatch")
	}
	if g.Degree(0) != 2 || g.Degree(3) != 0 || g.Degree(99) != 0 {
		t.Fatal("degree mismatch")
	}
}

func TestForEachNeighbor(t *testing.T) {
	g := FromCSR(smallCSR())
	var got []uint64
	g.ForEachNeighbor(0, func(dst uint64, w float64) bool {
		got = append(got, dst)
		return true
	})
	sort.Slice(got, func(i, j int) bool { return got[i] < got[j] })
	if len(got) != 2 || got[0] != 1 || got[1] != 2 {
		t.Fatalf("neighbors of 0 = %v", got)
	}
	// Early stop.
	count := 0
	g.ForEachNeighbor(0, func(uint64, float64) bool { count++; return false })
	if count != 1 {
		t.Fatalf("early stop visited %d", count)
	}
	// Absent vertex: no visits.
	g.ForEachNeighbor(77, func(uint64, float64) bool { t.Fatal("visited"); return true })
}

func TestApplyBatchEdgeOps(t *testing.T) {
	g := FromCSR(smallCSR())
	st := g.ApplyBatch(&delta.Batch{Deltas: []delta.Combined{
		{Node: 0, Ins: []delta.Edge{{Dst: 3, W: 9}}, Del: []uint64{1}},
		{Node: 1, Del: []uint64{2}},
	}})
	if st.EdgeInserts != 1 || st.EdgeDeletes != 2 {
		t.Fatalf("stats = %+v", st)
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	want := &csr.CSR{
		Off: []int64{0, 2, 2, 2, 2},
		Col: []uint64{2, 3},
		Val: []float64{2, 9},
	}
	if !csr.Equal(g.ToCSR(), want) {
		t.Fatalf("after edge ops: %+v", g.ToCSR())
	}
}

func TestApplyBatchNodeOps(t *testing.T) {
	g := FromCSR(smallCSR())
	st := g.ApplyBatch(&delta.Batch{Deltas: []delta.Combined{
		{Node: 2, Deleted: true},
		{Node: 6, Inserted: true, Ins: []delta.Edge{{Dst: 0, W: 5}}},
	}})
	if st.NodeInserts != 1 || st.NodeDeletes != 1 || st.Ops() != 3 {
		t.Fatalf("stats = %+v", st)
	}
	if g.HasVertex(2) {
		t.Fatal("deleted vertex still present")
	}
	if !g.HasVertex(6) || g.Degree(6) != 1 {
		t.Fatal("inserted vertex missing")
	}
	// Gap slots 4, 5 are absent, not empty vertices.
	if g.HasVertex(4) || g.HasVertex(5) {
		t.Fatal("gap slots materialized")
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestApplyBatchWeightOverwrite(t *testing.T) {
	g := FromCSR(smallCSR())
	g.ApplyBatch(&delta.Batch{Deltas: []delta.Combined{
		{Node: 0, Ins: []delta.Edge{{Dst: 1, W: 42}}},
	}})
	if g.NumEdges() != 3 {
		t.Fatalf("overwrite changed edge count: %d", g.NumEdges())
	}
	var w float64
	g.ForEachNeighbor(0, func(dst uint64, weight float64) bool {
		if dst == 1 {
			w = weight
		}
		return true
	})
	if w != 42 {
		t.Fatalf("weight = %v", w)
	}
}

// Static and dynamic propagation paths must agree: applying a batch to the
// dynamic structure equals merging it into the CSR (both driven by real
// transactions through the delta store).
func TestDynamicMatchesStaticPath(t *testing.T) {
	for seed := int64(1); seed <= 3; seed++ {
		s := graph.NewStore()
		store := deltastore.NewVolatile()
		s.AddCapturer(store)
		specs := make([]graph.NodeSpec, 20)
		for i := range specs {
			specs[i] = graph.NodeSpec{Label: "P"}
		}
		loadTS, err := s.BulkLoad(specs, []graph.EdgeSpec{{Src: 0, Dst: 1, Weight: 1}})
		if err != nil {
			t.Fatal(err)
		}
		static := csr.Build(s, loadTS)
		dynamic := FromCSR(static)

		r := rand.New(rand.NewSource(seed))
		for cycle := 0; cycle < 5; cycle++ {
			for q := 0; q < 50; q++ {
				tx := s.Begin()
				a := uint64(r.Intn(int(s.NumNodeSlots())))
				var opErr error
				switch r.Intn(8) {
				case 0, 1, 2, 3:
					_, opErr = tx.AddRel(a, uint64(r.Intn(int(s.NumNodeSlots()))), "k", float64(r.Intn(9)+1))
				case 4, 5:
					id, _ := tx.AddNode("P", nil)
					_, opErr = tx.AddRel(a, id, "k", 1)
				case 6:
					rels, err := tx.OutRels(a)
					if err == nil && len(rels) > 0 {
						opErr = tx.DeleteRel(rels[r.Intn(len(rels))].ID)
					} else {
						opErr = err
						if opErr == nil {
							tx.Abort()
							continue
						}
					}
				case 7:
					opErr = tx.DeleteNode(a)
				}
				if opErr != nil {
					tx.Abort()
					continue
				}
				tx.Commit()
			}
			tp := s.Oracle().Begin()
			batch := store.Scan(tp.TS())
			tp.Commit()

			var merged *csr.CSR
			merged, _ = csr.Merge(static, batch)
			dynamic.ApplyBatch(batch)
			if err := dynamic.Validate(); err != nil {
				t.Fatalf("seed %d cycle %d: %v", seed, cycle, err)
			}
			if !csr.Equal(dynamic.ToCSR(), merged) {
				t.Fatalf("seed %d cycle %d: dynamic and static replicas diverged", seed, cycle)
			}
			static = merged
		}
	}
}

func TestFromSnapshot(t *testing.T) {
	s := graph.NewStore()
	loadTS, err := s.BulkLoad(
		[]graph.NodeSpec{{Label: "A"}, {Label: "A"}, {Label: "A"}},
		[]graph.EdgeSpec{{Src: 0, Dst: 1, Weight: 1}, {Src: 2, Dst: 0, Weight: 2}},
	)
	if err != nil {
		t.Fatal(err)
	}
	// Delete node 1 so its slot is a hole.
	tx := s.Begin()
	if err := tx.DeleteNode(1); err != nil {
		t.Fatal(err)
	}
	tx.Commit()
	ts := s.Oracle().LastCommitted()
	g := FromSnapshot(s, ts)
	if g.HasVertex(1) {
		t.Fatal("deleted node materialized")
	}
	if !g.HasVertex(0) || g.Degree(0) != 0 {
		t.Fatalf("node 0: has=%v deg=%d (edge to deleted 1 should be gone)", g.HasVertex(0), g.Degree(0))
	}
	if g.Degree(2) != 1 {
		t.Fatalf("node 2 degree = %d", g.Degree(2))
	}
	if !csr.Equal(g.ToCSR(), csr.Build(s, ts)) {
		t.Fatal("FromSnapshot differs from CSR build")
	}
	_ = loadTS
	_ = mvto.TS(0)
}
