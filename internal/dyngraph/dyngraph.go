// Package dyngraph implements the paper's representative *dynamic* GPU
// graph data structure (§2.1, §5.4): a hash table per vertex storing its
// outgoing edges, after Awad et al. [7], with batched ingestion of update
// groups — Algorithm 1. On real hardware the tables live in GPU memory and
// batches are ingested by kernels; here the structure lives on the host and
// the simulated device charges transfer and ingest-kernel time (see
// internal/gpu).
package dyngraph

import (
	"fmt"
	"runtime"
	"sort"
	"sync"

	"h2tap/internal/csr"
	"h2tap/internal/delta"
	"h2tap/internal/mvto"
)

// vertex is one per-node hash table: destination → weight.
type vertex struct {
	edges map[uint64]float64
}

// Graph is the dynamic structure. Vertices are indexed by node ID; a nil
// entry is an absent (never-inserted or deleted) vertex.
type Graph struct {
	mu       sync.RWMutex
	verts    []*vertex
	numEdges int64
}

// New returns an empty dynamic graph.
func New() *Graph { return &Graph{} }

// FromCSR builds the dynamic structure from a CSR snapshot (initial replica
// load).
func FromCSR(c *csr.CSR) *Graph {
	g := &Graph{verts: make([]*vertex, c.NumNodes())}
	for u := 0; u < c.NumNodes(); u++ {
		col, val := c.Row(uint64(u))
		v := &vertex{edges: make(map[uint64]float64, len(col))}
		for i := range col {
			v.edges[col[i]] = val[i]
		}
		g.verts[u] = v
		g.numEdges += int64(len(col))
	}
	return g
}

// FromSnapshot builds the dynamic structure directly from the main graph at
// a commit timestamp. Node slots with no visible node become absent
// vertices.
func FromSnapshot(src csr.Snapshot, ts mvto.TS) *Graph {
	type lister interface {
		NodeExistsAt(id uint64, ts mvto.TS) bool
	}
	n := src.NumNodeSlots()
	g := &Graph{verts: make([]*vertex, n)}
	ex, hasExists := src.(lister)
	for id := uint64(0); id < n; id++ {
		edges := src.OutEdgesAt(id, ts)
		if edges == nil && hasExists && !ex.NodeExistsAt(id, ts) {
			continue
		}
		v := &vertex{edges: make(map[uint64]float64, len(edges))}
		for _, e := range edges {
			v.edges[e.Dst] = e.W
		}
		g.verts[id] = v
		g.numEdges += int64(len(edges))
	}
	return g
}

// NumVertexSlots reports the vertex ID space (including absent slots).
func (g *Graph) NumVertexSlots() int {
	g.mu.RLock()
	defer g.mu.RUnlock()
	return len(g.verts)
}

// NumEdges reports the stored edge count.
func (g *Graph) NumEdges() int64 {
	g.mu.RLock()
	defer g.mu.RUnlock()
	return g.numEdges
}

// HasVertex reports whether vertex u exists.
func (g *Graph) HasVertex(u uint64) bool {
	g.mu.RLock()
	defer g.mu.RUnlock()
	return u < uint64(len(g.verts)) && g.verts[u] != nil
}

// Degree reports the out-degree of u (0 for absent vertices).
func (g *Graph) Degree(u uint64) int {
	g.mu.RLock()
	defer g.mu.RUnlock()
	if u >= uint64(len(g.verts)) || g.verts[u] == nil {
		return 0
	}
	return len(g.verts[u].edges)
}

// ForEachNeighbor visits u's out-edges. Iteration order is unspecified (a
// hash-table structure, unlike CSR's sorted rows).
func (g *Graph) ForEachNeighbor(u uint64, fn func(dst uint64, w float64) bool) {
	g.mu.RLock()
	defer g.mu.RUnlock()
	if u >= uint64(len(g.verts)) || g.verts[u] == nil {
		return
	}
	for dst, w := range g.verts[u].edges {
		if !fn(dst, w) {
			return
		}
	}
}

// Stats reports the work of one ApplyBatch, used to charge the simulated
// ingest kernel.
type Stats struct {
	EdgeInserts int
	EdgeDeletes int
	NodeInserts int
	NodeDeletes int
}

// Ops is the total number of update operations ingested.
func (s Stats) Ops() int {
	return s.EdgeInserts + s.EdgeDeletes + s.NodeInserts + s.NodeDeletes
}

// PlanBatch predicts applying b without mutating the graph: the exact
// Stats ApplyBatchWorkers will report, the vertex-slot count after
// application, and an upper bound on the post-application edge count
// (ignoring deletes). The simulated device uses it to charge the ingest
// kernel and reserve growth memory *before* the host-side twin mutates, so
// a rejected ingest is failure-atomic.
func (g *Graph) PlanBatch(b *delta.Batch) (st Stats, slots int, maxEdges int64) {
	g.mu.RLock()
	defer g.mu.RUnlock()
	xid := int64(len(g.verts)) - 1
	slots = len(g.verts)
	maxEdges = g.numEdges
	for i := range b.Deltas {
		d := &b.Deltas[i]
		switch {
		case d.Deleted:
			st.NodeDeletes++
		case int64(d.Node) <= xid:
			st.EdgeInserts += len(d.Ins)
			st.EdgeDeletes += len(d.Del)
			maxEdges += int64(len(d.Ins))
		default:
			st.NodeInserts++
			st.EdgeInserts += len(d.Ins)
			maxEdges += int64(len(d.Ins))
			if need := int(d.Node) + 1; need > slots {
				slots = need
			}
		}
	}
	return st, slots, maxEdges
}

// ApplyBatch ingests one propagation batch — Algorithm 1 — with
// GOMAXPROCS workers for the existing-node edge batches. See
// ApplyBatchWorkers.
func (g *Graph) ApplyBatch(b *delta.Batch) Stats {
	return g.ApplyBatchWorkers(b, 0)
}

// ApplyBatchWorkers ingests one propagation batch — Algorithm 1 — with an
// explicit worker count (workers <= 0 selects GOMAXPROCS). Deltas are
// partitioned by the pre-update maximum node ID: deleted nodes go to a
// deletion queue, deltas for existing nodes apply their edge inserts and
// deletes in batches, deltas beyond the old range enter an insertion queue;
// the queues are drained last (lines 10-11). Edge batches for distinct
// vertices are ingested in parallel, mirroring the GPU structure's
// concurrent bucket updates: each delta touches only its own vertex's
// table, so sharding the node-sorted delta list gives workers disjoint
// vertex sets. The resulting graph is identical at every worker count.
func (g *Graph) ApplyBatchWorkers(b *delta.Batch, workers int) Stats {
	g.mu.Lock()
	defer g.mu.Unlock()

	xid := int64(len(g.verts)) - 1 // max node ID before updates (line 1)
	var st Stats
	var insertions []*delta.Combined // queue of new-node deltas (line 9)
	var deletions []uint64           // queue of deleted node IDs (line 4)
	var existing []*delta.Combined

	for i := range b.Deltas {
		d := &b.Deltas[i]
		switch {
		case d.Deleted:
			deletions = append(deletions, d.Node)
		case int64(d.Node) <= xid:
			existing = append(existing, d)
		default:
			insertions = append(insertions, d)
		}
	}

	// Lines 6-7: batched edge ingestion for existing nodes, parallel
	// across vertices.
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(existing) {
		workers = len(existing)
	}
	if workers < 1 {
		workers = 1
	}
	var wg sync.WaitGroup
	var mu sync.Mutex
	chunk := (len(existing) + workers - 1) / workers
	for w := 0; w < len(existing); w += chunk {
		lo, hi := w, w+chunk
		if hi > len(existing) {
			hi = len(existing)
		}
		wg.Add(1)
		go func(ds []*delta.Combined) {
			defer wg.Done()
			var local Stats
			var edgeDelta int64
			for _, d := range ds {
				v := g.verts[d.Node]
				if v == nil {
					// Re-inserted slot (deleted earlier, reborn in this
					// batch via Inserted flag on an existing ID cannot
					// happen with dense IDs; guard anyway).
					v = &vertex{edges: make(map[uint64]float64, len(d.Ins))}
					g.verts[d.Node] = v
				}
				for _, e := range d.Ins {
					if _, dup := v.edges[e.Dst]; !dup {
						edgeDelta++
					}
					v.edges[e.Dst] = e.W
					local.EdgeInserts++
				}
				for _, dst := range d.Del {
					if _, ok := v.edges[dst]; ok {
						delete(v.edges, dst)
						edgeDelta--
					}
					local.EdgeDeletes++
				}
			}
			mu.Lock()
			st.EdgeInserts += local.EdgeInserts
			st.EdgeDeletes += local.EdgeDeletes
			g.numEdges += edgeDelta
			mu.Unlock()
		}(existing[lo:hi])
	}
	wg.Wait()

	// Line 10: ingest newly inserted nodes.
	for _, d := range insertions {
		need := int(d.Node) + 1
		for len(g.verts) < need {
			g.verts = append(g.verts, nil)
		}
		v := &vertex{edges: make(map[uint64]float64, len(d.Ins))}
		for _, e := range d.Ins {
			v.edges[e.Dst] = e.W
		}
		g.verts[d.Node] = v
		g.numEdges += int64(len(d.Ins))
		st.NodeInserts++
		st.EdgeInserts += len(d.Ins)
	}

	// Line 11: remove deleted nodes. Edges *to* them were deleted via
	// explicit source-node deltas (§5.1), so only the vertex itself goes.
	for _, id := range deletions {
		if id < uint64(len(g.verts)) && g.verts[id] != nil {
			g.numEdges -= int64(len(g.verts[id].edges))
			g.verts[id] = nil
		}
		st.NodeDeletes++
	}
	return st
}

// ToCSR exports the dynamic structure as a CSR with sorted rows, for
// equivalence checks against the static path.
func (g *Graph) ToCSR() *csr.CSR {
	g.mu.RLock()
	defer g.mu.RUnlock()
	c := &csr.CSR{Off: make([]int64, len(g.verts)+1)}
	for u := range g.verts {
		if g.verts[u] != nil {
			cols := make([]uint64, 0, len(g.verts[u].edges))
			for dst := range g.verts[u].edges {
				cols = append(cols, dst)
			}
			sort.Slice(cols, func(i, j int) bool { return cols[i] < cols[j] })
			for _, dst := range cols {
				c.Col = append(c.Col, dst)
				c.Val = append(c.Val, g.verts[u].edges[dst])
			}
		}
		c.Off[u+1] = int64(len(c.Col))
	}
	return c
}

// Validate checks internal consistency (edge counter vs actual tables).
func (g *Graph) Validate() error {
	g.mu.RLock()
	defer g.mu.RUnlock()
	var n int64
	for _, v := range g.verts {
		if v != nil {
			n += int64(len(v.edges))
		}
	}
	if n != g.numEdges {
		return fmt.Errorf("dyngraph: edge counter %d, actual %d", g.numEdges, n)
	}
	return nil
}
