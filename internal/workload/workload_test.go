package workload

import (
	"testing"

	"h2tap/internal/csr"
	"h2tap/internal/deltastore"
	"h2tap/internal/graph"
	"h2tap/internal/ldbc"
	"h2tap/internal/mvto"
)

func loadSmall(t *testing.T) (*graph.Store, *ldbc.Dataset, mvto.TS) {
	t.Helper()
	d := ldbc.GenerateSNB(ldbc.SNBConfig{SF: 1, Downscale: 100, Seed: 1})
	s := graph.NewStore()
	ts, err := d.Load(s)
	if err != nil {
		t.Fatal(err)
	}
	return s, d, ts
}

func TestDegreeWindowEnds(t *testing.T) {
	s, d, ts := loadSmall(t)
	lo := DegreeWindow(s, ts, d.Persons, LoDeg, 10)
	hi := DegreeWindow(s, ts, d.Persons, HiDeg, 10)
	if len(lo) != 10 || len(hi) != 10 {
		t.Fatalf("window sizes %d/%d", len(lo), len(hi))
	}
	maxLo, minHi := -1, 1<<30
	for _, id := range lo {
		if dg := s.DegreeAt(id, ts); dg > maxLo {
			maxLo = dg
		}
	}
	for _, id := range hi {
		if dg := s.DegreeAt(id, ts); dg < minHi {
			minHi = dg
		}
	}
	if maxLo > minHi {
		t.Fatalf("LoDeg max %d exceeds HiDeg min %d", maxLo, minHi)
	}
	// Oversized request clamps.
	all := DegreeWindow(s, ts, d.Persons, LoDeg, 1<<20)
	if len(all) != len(d.Persons) {
		t.Fatalf("clamped window = %d", len(all))
	}
}

func TestMixedDistribution(t *testing.T) {
	s, d, ts := loadSmall(t)
	_ = s
	g := NewGenerator(DegreeWindow(s, ts, d.Persons, HiDeg, 50), d.Posts, 42)
	ops := g.Mixed(10000)
	counts := map[OpKind]int{}
	for _, op := range ops {
		counts[op.Kind]++
	}
	// §6.3 distribution: 66/22/11/1 within a few points.
	within := func(got, want, tol int) bool { return got > want-tol && got < want+tol }
	if !within(counts[InsertRel], 6600, 400) ||
		!within(counts[InsertNode], 2200, 400) ||
		!within(counts[DeleteRel], 1100, 300) ||
		!within(counts[DeleteNode], 100, 80) {
		t.Fatalf("mixed distribution = %v", counts)
	}
}

func TestRunInsertRel(t *testing.T) {
	s, d, ts := loadSmall(t)
	g := NewGenerator(DegreeWindow(s, ts, d.Persons, HiDeg, 20), d.Posts, 1)
	before := s.LiveRels()
	res := Run(s, g.Ops(InsertRel, 200))
	if res.Committed == 0 {
		t.Fatal("no insert-rel committed")
	}
	if s.LiveRels() != before+int64(res.Committed) {
		t.Fatalf("rels = %d, want %d", s.LiveRels(), before+int64(res.Committed))
	}
	if res.Committed+res.Aborted+res.Skipped != 200 {
		t.Fatalf("accounting broken: %+v", res)
	}
}

func TestRunInsertNode(t *testing.T) {
	s, d, ts := loadSmall(t)
	g := NewGenerator(DegreeWindow(s, ts, d.Persons, LoDeg, 20), d.Posts, 1)
	beforeNodes := s.LiveNodes()
	res := Run(s, g.Ops(InsertNode, 100))
	if res.Committed != 100 {
		t.Fatalf("insert-node committed = %d, want 100 (%+v)", res.Committed, res)
	}
	if s.LiveNodes() != beforeNodes+100 {
		t.Fatalf("nodes = %d", s.LiveNodes())
	}
}

func TestRunDeleteRelExhausts(t *testing.T) {
	s, d, ts := loadSmall(t)
	window := DegreeWindow(s, ts, d.Persons, HiDeg, 5)
	var totalDeg int
	for _, id := range window {
		totalDeg += s.DegreeAt(id, ts)
	}
	g := NewGenerator(window, d.Posts, 1)
	res := Run(s, g.Ops(DeleteRel, totalDeg+50))
	if res.Committed != totalDeg {
		t.Fatalf("deleted %d rels, want %d (window out-degree; rest skipped)", res.Committed, totalDeg)
	}
	if res.Skipped != 50 {
		t.Fatalf("skipped = %d, want 50", res.Skipped)
	}
}

func TestRunDeleteNode(t *testing.T) {
	s, d, ts := loadSmall(t)
	window := DegreeWindow(s, ts, d.Persons, HiDeg, 10)
	g := NewGenerator(window, d.Posts, 1)
	res := Run(s, g.Ops(DeleteNode, 10))
	// Each window node deleted exactly once; the generator avoids reuse.
	if res.Committed != 10 {
		t.Fatalf("delete-node committed = %d (%+v)", res.Committed, res)
	}
	cur := s.Oracle().LastCommitted()
	for _, id := range window {
		if s.NodeExistsAt(id, cur) {
			t.Fatalf("node %d survived", id)
		}
	}
}

func TestRunFeedsDeltaStoreAndReplicaConverges(t *testing.T) {
	s, d, ts := loadSmall(t)
	store := deltastore.NewVolatile()
	s.AddCapturer(store)
	replica := csr.Build(s, ts)

	g := NewGenerator(DegreeWindow(s, ts, d.Persons, HiDeg, 30), d.Posts, 3)
	res := Run(s, g.Mixed(500))
	if res.Committed == 0 {
		t.Fatal("nothing committed")
	}
	if store.Records() == 0 {
		t.Fatal("no deltas captured")
	}

	tp := s.Oracle().Begin()
	batch := store.Scan(tp.TS())
	merged, _ := csr.Merge(replica, batch)
	rebuilt := csr.Build(s, tp.TS()-1)
	tp.Commit()
	if !csr.Equal(merged, rebuilt) {
		t.Fatal("replica diverged from main graph after mixed workload")
	}
}

func TestRunParallelConsistency(t *testing.T) {
	s, d, ts := loadSmall(t)
	store := deltastore.NewVolatile()
	s.AddCapturer(store)
	replica := csr.Build(s, ts)

	g := NewGenerator(DegreeWindow(s, ts, d.Persons, HiDeg, 40), d.Posts, 5)
	ops := g.Mixed(1000)
	res := RunParallel(s, ops, 8)
	if res.Committed == 0 {
		t.Fatal("nothing committed in parallel")
	}
	if res.Committed+res.Aborted+res.Skipped != 1000 {
		t.Fatalf("accounting broken: %+v", res)
	}
	// The contention-free delta store must still yield a consistent
	// replica: merge == rebuild after a concurrent commit storm.
	tp := s.Oracle().Begin()
	batch := store.Scan(tp.TS())
	merged, _ := csr.Merge(replica, batch)
	rebuilt := csr.Build(s, tp.TS()-1)
	tp.Commit()
	if !csr.Equal(merged, rebuilt) {
		t.Fatal("replica diverged after parallel workload")
	}
	t.Logf("parallel: %d committed, %d aborted, %d skipped", res.Committed, res.Aborted, res.Skipped)
}

func TestOpKindStrings(t *testing.T) {
	for k, want := range map[OpKind]string{
		InsertRel: "insert-relationship", InsertNode: "insert-node",
		DeleteRel: "delete-relationship", DeleteNode: "delete-node",
	} {
		if k.String() != want {
			t.Errorf("%d.String() = %q", k, k.String())
		}
	}
	if LoDeg.String() != "LoDeg" || HiDeg.String() != "HiDeg" {
		t.Error("window names wrong")
	}
}

func TestEmptyWindowPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	NewGenerator(nil, nil, 1)
}
