// Package workload implements the transactional update workload of §6.2:
// four basic update operations centered on the update types that alter the
// replica — Insert Relationship (a Person likes a Post), Insert Node (a new
// Person with an incoming knows edge), Delete Relationship (one outgoing
// edge of a Person) and Delete Node (a Person with all its edges) — plus
// the degree-window selection (LoDeg/HiDeg) and the mixed workload
// composition of §6.3 (66% / 22% / 11% / 1%).
package workload

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"time"

	"h2tap/internal/graph"
	"h2tap/internal/ldbc"
	"h2tap/internal/mvto"
)

// OpKind identifies one of the four update operations.
type OpKind int

// The four §6.2 operations.
const (
	InsertRel OpKind = iota
	InsertNode
	DeleteRel
	DeleteNode
)

// String names the operation.
func (k OpKind) String() string {
	switch k {
	case InsertRel:
		return "insert-relationship"
	case InsertNode:
		return "insert-node"
	case DeleteRel:
		return "delete-relationship"
	case DeleteNode:
		return "delete-node"
	default:
		return fmt.Sprintf("op(%d)", int(k))
	}
}

// Op is one transactional update query.
type Op struct {
	Kind OpKind
	Src  graph.NodeID // the Person the operation centers on
	Dst  graph.NodeID // InsertRel: the Post to like
	W    float64
}

// WindowKind selects which end of the degree distribution the update window
// slides over (§6.3: LoDeg / HiDeg).
type WindowKind int

// Window kinds.
const (
	LoDeg WindowKind = iota
	HiDeg
)

// String names the window.
func (w WindowKind) String() string {
	if w == HiDeg {
		return "HiDeg"
	}
	return "LoDeg"
}

// DegreeWindow sorts the candidate nodes by out-degree at ts and returns a
// window of the requested size from the low or high end.
func DegreeWindow(s *graph.Store, ts mvto.TS, candidates []graph.NodeID, kind WindowKind, size int) []graph.NodeID {
	type nd struct {
		id  graph.NodeID
		deg int
	}
	all := make([]nd, len(candidates))
	for i, id := range candidates {
		all[i] = nd{id: id, deg: s.DegreeAt(id, ts)}
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].deg != all[j].deg {
			return all[i].deg < all[j].deg
		}
		return all[i].id < all[j].id
	})
	if size > len(all) {
		size = len(all)
	}
	out := make([]graph.NodeID, size)
	if kind == LoDeg {
		for i := 0; i < size; i++ {
			out[i] = all[i].id
		}
	} else {
		for i := 0; i < size; i++ {
			out[i] = all[len(all)-size+i].id
		}
	}
	return out
}

// Generator produces operation streams over a loaded dataset, selecting
// subject Persons from a degree window.
type Generator struct {
	window []graph.NodeID
	posts  []graph.NodeID
	rng    *rand.Rand
	// deleted tracks nodes consumed by DeleteNode ops so subsequent ops do
	// not target them.
	deleted map[graph.NodeID]bool
}

// NewGenerator returns a generator picking subjects from window and liked
// posts from posts.
func NewGenerator(window, posts []graph.NodeID, seed int64) *Generator {
	if len(window) == 0 {
		panic("workload: empty update window")
	}
	return &Generator{
		window:  window,
		posts:   posts,
		rng:     rand.New(rand.NewSource(seed)),
		deleted: make(map[graph.NodeID]bool),
	}
}

func (g *Generator) pick() graph.NodeID {
	for try := 0; try < 64; try++ {
		id := g.window[g.rng.Intn(len(g.window))]
		if !g.deleted[id] {
			return id
		}
	}
	return g.window[g.rng.Intn(len(g.window))]
}

// Next produces one operation of the given kind.
func (g *Generator) Next(kind OpKind) Op {
	op := Op{Kind: kind, Src: g.pick(), W: 1 + float64(g.rng.Intn(9))}
	switch kind {
	case InsertRel:
		if len(g.posts) == 0 {
			panic("workload: InsertRel requires posts")
		}
		op.Dst = g.posts[g.rng.Intn(len(g.posts))]
	case DeleteNode:
		g.deleted[op.Src] = true
	}
	return op
}

// Ops produces n operations of one kind (the single-type panels of Fig 3).
func (g *Generator) Ops(kind OpKind, n int) []Op {
	out := make([]Op, n)
	for i := range out {
		out[i] = g.Next(kind)
	}
	return out
}

// Mixed produces the §6.3 mixed workload: 66% insert relationship, 22%
// insert node, 11% delete relationship, 1% delete node.
func (g *Generator) Mixed(n int) []Op {
	out := make([]Op, n)
	for i := range out {
		p := g.rng.Intn(100)
		var k OpKind
		switch {
		case p < 66:
			k = InsertRel
		case p < 88:
			k = InsertNode
		case p < 99:
			k = DeleteRel
		default:
			k = DeleteNode
		}
		out[i] = g.Next(k)
	}
	return out
}

// Result summarizes a workload run.
type Result struct {
	Committed int
	Aborted   int
	Skipped   int // ops with nothing to do (e.g. DeleteRel on a bare node)
	Duration  time.Duration
}

// Run executes the operations as transactional queries against the store,
// one transaction per operation, and reports the total transactional update
// time — the Fig 3/6/8 metric. Conflicted or inapplicable operations abort;
// the paper's workloads are single-client so aborts stay rare.
func Run(s *graph.Store, ops []Op) Result {
	var res Result
	start := time.Now()
	for i := range ops {
		op := &ops[i]
		tx := s.Begin()
		err := apply(tx, op)
		switch {
		case err == nil:
			if cerr := tx.Commit(); cerr != nil {
				res.Aborted++
			} else {
				res.Committed++
			}
		case errors.Is(err, errNothingToDo):
			tx.Abort()
			res.Skipped++
		default:
			tx.Abort()
			res.Aborted++
		}
	}
	res.Duration = time.Since(start)
	return res
}

// RunParallel executes the operations with the given number of concurrent
// clients, one transaction per operation, ops partitioned round-robin.
// Aborted operations (MVTO conflicts between clients) are counted, not
// retried. This is the multi-client path that exercises the delta store's
// contention-free appends (§5.1 benefit 2).
func RunParallel(s *graph.Store, ops []Op, clients int) Result {
	if clients < 1 {
		clients = 1
	}
	results := make([]Result, clients)
	start := time.Now()
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			res := &results[c]
			for i := c; i < len(ops); i += clients {
				tx := s.Begin()
				err := apply(tx, &ops[i])
				switch {
				case err == nil:
					if cerr := tx.Commit(); cerr != nil {
						res.Aborted++
					} else {
						res.Committed++
					}
				case errors.Is(err, errNothingToDo):
					tx.Abort()
					res.Skipped++
				default:
					tx.Abort()
					res.Aborted++
				}
			}
		}(c)
	}
	wg.Wait()
	var total Result
	for _, r := range results {
		total.Committed += r.Committed
		total.Aborted += r.Aborted
		total.Skipped += r.Skipped
	}
	total.Duration = time.Since(start)
	return total
}

// ApplyOne executes a single operation as its own transaction, reporting
// whether it committed. Benchmarks drive bounded op streams through it.
func ApplyOne(s *graph.Store, op *Op) bool {
	tx := s.Begin()
	if err := apply(tx, op); err != nil {
		tx.Abort()
		return false
	}
	return tx.Commit() == nil
}

var errNothingToDo = errors.New("workload: nothing to do")

func apply(tx *graph.Tx, op *Op) error {
	switch op.Kind {
	case InsertRel:
		// §6.2: retrieve the Person and the Post, connect with `likes`.
		if !tx.NodeExists(op.Src) || !tx.NodeExists(op.Dst) {
			return errNothingToDo
		}
		_, err := tx.AddRel(op.Src, op.Dst, ldbc.RelLikes, op.W)
		if errors.Is(err, graph.ErrDuplicateEdge) {
			return errNothingToDo
		}
		return err
	case InsertNode:
		// §6.2: create a Person and an incoming `knows` edge from an
		// existing Person.
		if !tx.NodeExists(op.Src) {
			return errNothingToDo
		}
		id, err := tx.AddNode(ldbc.LabelPerson, nil)
		if err != nil {
			return err
		}
		_, err = tx.AddRel(op.Src, id, ldbc.RelKnows, op.W)
		return err
	case DeleteRel:
		// §6.2: delete one outgoing relationship of the Person.
		rels, err := tx.OutRels(op.Src)
		if err != nil {
			return errNothingToDo
		}
		if len(rels) == 0 {
			return errNothingToDo
		}
		return tx.DeleteRel(rels[0].ID)
	case DeleteNode:
		// §6.2: remove all edges of the Person, then the node.
		if !tx.NodeExists(op.Src) {
			return errNothingToDo
		}
		return tx.DeleteNode(op.Src)
	default:
		return fmt.Errorf("workload: unknown op kind %d", op.Kind)
	}
}
