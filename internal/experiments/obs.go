package experiments

import (
	"fmt"
	"time"

	"h2tap/internal/htap"
	"h2tap/internal/obs"
	"h2tap/internal/workload"
)

// ObsExp measures the cost of the observability layer on the hot paths: the
// same update + propagation workload runs with no observer (every hook is a
// single nil check) and with a full Observer (commit histogram, delta-append
// counters, phase histograms, cycle traces, drift tracking). Reported: total
// workload wall per configuration and the relative overhead, which the
// design budget caps at 3%.
func (c Config) ObsExp() *Table {
	c = c.norm()
	t := &Table{
		ID:    "obs",
		Title: "Observability instrumentation overhead (SF1, mixed updates + propagation)",
		Columns: []string{"observer", "cycles", "updates/cycle",
			"avg-cycle-wall", "total-wall", "overhead"},
	}
	updates := c.queries(100_000)
	const cycles = 6

	run := func(o *obs.Observer) time.Duration {
		b := c.setup(1, captNone, false)
		eng, err := htap.NewEngine(b.store, htap.Config{
			Replica: htap.StaticCSR,
			Workers: c.Workers,
			Obs:     o,
		})
		if err != nil {
			panic(err)
		}
		gen := workload.NewGenerator(b.window(workload.HiDeg, windowFrac), b.ds.Posts, c.Seed)
		start := time.Now()
		for i := 0; i < cycles; i++ {
			b.runOps(gen.Mixed(updates))
			if _, err := eng.Propagate(); err != nil {
				panic(err)
			}
		}
		return time.Since(start)
	}

	// Warm up once (page cache, allocator), then take the best of three
	// interleaved repetitions per configuration so scheduling noise cannot
	// masquerade as instrumentation cost.
	run(nil)
	const reps = 3
	best := func(cur, d time.Duration) time.Duration {
		if cur == 0 || d < cur {
			return d
		}
		return cur
	}
	var off, on time.Duration
	for r := 0; r < reps; r++ {
		off = best(off, run(nil))
		on = best(on, run(obs.New()))
	}

	overhead := 100 * (on.Seconds() - off.Seconds()) / off.Seconds()
	t.AddRow("off", cycles, updates, off/cycles, off, "baseline")
	t.AddRow("on", cycles, updates, on/cycles, on, fmtPct(overhead))
	t.Note("observer on = full wiring: commit latency histogram, delta append counters, phase histograms, cycle tracer, drift tracker, scrape gauges")
	t.Note("best-of-%d interleaved repetitions per configuration; budget: overhead < 3%%", reps)
	return t
}

// fmtPct renders the overhead percentage; a negative delta is measurement
// noise (the instrumented run was not slower).
func fmtPct(p float64) string {
	if p < 0 {
		return "<0.1% (noise)"
	}
	return fmt.Sprintf("%.2f%%", p)
}
