package experiments

import (
	"os"
	"path/filepath"
	"sync"
	"time"

	"h2tap/internal/graph"
	"h2tap/internal/vfs"
	"h2tap/internal/wal"
)

// gcFsyncLatency models a commodity SSD's flush latency. The host page
// cache makes a real fsync on a build machine (often tmpfs) nearly free,
// which would hide exactly the cost group commit amortizes, so the
// experiment pins it — same device-simulation stance as the GPU cost
// models.
const gcFsyncLatency = 400 * time.Microsecond

// GroupCommitExp is an extension beyond the paper's evaluation: durable
// commit throughput versus concurrent committers, with and without WAL
// group commit. Serialized durable commits (one fsync each, MaxBatch=1)
// flat-line at 1/fsync-latency regardless of committer count; group commit
// shares one write+fsync across every committer that arrives while the
// previous batch flushes, so throughput scales with the offered
// concurrency. The no-sync column isolates the non-fsync commit path
// (staging, framing, publication), which group commit must not slow down.
func (c Config) GroupCommitExp() *Table {
	c = c.norm()
	t := &Table{
		ID:    "groupcommit",
		Title: "Durable commit throughput vs committers (WAL group commit)",
		Columns: []string{"committers", "serialized+sync c/s", "grouped+sync c/s",
			"speedup", "grouped+nosync c/s", "max batch"},
	}

	run := func(committers int, syncWAL bool, maxBatch int) (float64, uint64) {
		dir, err := os.MkdirTemp("", "h2tap-gc")
		if err != nil {
			panic(err)
		}
		defer os.RemoveAll(dir)
		l, err := wal.Open(filepath.Join(dir, "graph.wal"), wal.Options{
			SyncEveryCommit: syncWAL,
			GroupCommit:     wal.GroupCommit{MaxBatch: maxBatch},
			FS:              vfs.SlowSync(vfs.OS(), gcFsyncLatency),
		})
		if err != nil {
			panic(err)
		}
		defer l.Close()
		s := graph.NewStore()
		s.AddOpLogger(l)

		ops := c.queries(6000)
		if ops < 480 {
			ops = 480
		}
		per := ops / committers
		var wg sync.WaitGroup
		start := time.Now()
		for w := 0; w < committers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := 0; i < per; i++ {
					tx := s.Begin()
					if _, err := tx.AddNode("N", nil); err != nil {
						panic(err)
					}
					if err := tx.Commit(); err != nil {
						panic(err)
					}
				}
			}()
		}
		wg.Wait()
		tps := float64(per*committers) / time.Since(start).Seconds()
		return tps, l.Stats().MaxBatch
	}

	for _, committers := range []int{1, 2, 4, 8, 16} {
		serTPS, _ := run(committers, true, 1)
		grpTPS, maxBatch := run(committers, true, 0)
		noSyncTPS, _ := run(committers, false, 0)
		t.AddRow(committers, int(serTPS), int(grpTPS),
			formatRatio(grpTPS/serTPS), int(noSyncTPS), int(maxBatch))
	}
	t.Note("extension experiment (not in the paper): fsync latency is pinned at 400µs to model a commodity SSD; expected shape — the serialized column flat-lines near 1/fsync-latency while the grouped column scales with committers as batches form")
	return t
}
