package experiments

import (
	"fmt"
	"os"
	"strconv"
	"time"

	"h2tap/internal/crashtest"
)

// ShardFaultsExp is the robustness extension for per-shard fault domains: it
// runs the randomized shard-fault storm (concurrent single- and cross-shard
// committers plus stitched analytics against a 3-shard cluster, with a chaos
// controller repeatedly failing/crashing one fault domain and recovering it
// online) and reports availability and recovery cost per seed. Every run
// also enforces the storm's ledger invariants (acked never lost, nothing
// fabricated, 2PC halves agree, durable convergence across a restart); a row
// only appears if they held. H2TAP_SOAK_SECS stretches the per-seed storm
// length (make shard-soak sets it to 60).
func (c Config) ShardFaultsExp() *Table {
	c = c.norm()
	t := &Table{
		ID:    "shardfaults",
		Title: "Shard fault-domain storm: online isolation, shedding and recovery (3 shards)",
		Columns: []string{"seed", "secs", "acked", "cross-acked", "sheds", "stitches",
			"degraded-stitches", "shard-faults", "coord-faults", "recoveries", "rec-max", "rec-avg"},
	}
	dur := 2 * time.Second
	if s := os.Getenv("H2TAP_SOAK_SECS"); s != "" {
		if n, err := strconv.Atoi(s); err == nil && n > 0 {
			dur = time.Duration(n) * time.Second
		}
	}
	for seed := c.Seed; seed < c.Seed+3; seed++ {
		dir, err := os.MkdirTemp("", "h2tap-shardfaults-*")
		if err != nil {
			panic(err)
		}
		rep, err := crashtest.ShardStorm(crashtest.StormConfig{Dir: dir, Duration: dur, Seed: seed})
		os.RemoveAll(dir)
		if err != nil {
			panic(fmt.Sprintf("shardfaults: storm invariant violated (seed %d): %v", seed, err))
		}
		recAvg := time.Duration(0)
		if rep.Recoveries > 0 {
			recAvg = rep.RecoverySum / time.Duration(rep.Recoveries)
		}
		t.AddRow(seed, dur.Seconds(), rep.Acked, rep.CrossAcked, rep.Sheds, rep.Stitches,
			rep.Degraded, rep.ShardFaults, rep.CoordFaults, rep.Recoveries,
			rep.RecoveryMax.Round(time.Millisecond), recAvg.Round(time.Millisecond))
	}
	t.Note("extension experiment (not in the paper): expected shape — acked and stitches stay nonzero through every storm (healthy shards keep serving while the victim sheds with structured errors), recoveries match injected faults, and rec-max stays in the hundreds of milliseconds at this scale; the ledger and restart-convergence invariants are asserted, not reported")
	return t
}
