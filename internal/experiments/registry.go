package experiments

import (
	"fmt"
	"sort"
)

// Experiment is one runnable evaluation experiment.
type Experiment struct {
	ID    string
	Desc  string
	Run   func(Config) *Table
	Heavy bool // long-running even at default scale
}

// All enumerates every experiment, in paper order.
func All() []Experiment {
	return []Experiment{
		{ID: "fig3", Desc: "Transactional update time (DELTA_I vs DELTA_FE vs baseline)", Run: Config.Fig3},
		{ID: "fig4", Desc: "Delta memory footprint", Run: Config.Fig4},
		{ID: "fig5", Desc: "Update propagation time (scan+merge)", Run: Config.Fig5},
		{ID: "fig6", Desc: "Baseline vs DELTA_FE update time (HiDeg, SF1)", Run: Config.Fig6},
		{ID: "fig7", Desc: "DELTA_I delta append overhead", Run: Config.Fig7},
		{ID: "fig8", Desc: "Baseline vs DELTA_FE update time (mixed, SF10)", Run: Config.Fig8},
		{ID: "fig9", Desc: "CSR rebuild and copy vs scale factor", Run: Config.Fig9, Heavy: true},
		{ID: "fig10", Desc: "Update propagation time detail vs #deltas", Run: Config.Fig10},
		{ID: "fig11", Desc: "Volatile vs persistent delta store", Run: Config.Fig11},
		{ID: "fig12", Desc: "DELTA_FE vs relational delta store R", Run: Config.Fig12},
		{ID: "table1", Desc: "HTAP vs H2TAP analytics latency", Run: Config.Table1, Heavy: true},
		{ID: "sec66", Desc: "Update handling walkthrough (§6.6 numbers)", Run: Config.Sec66},
		{ID: "costmodel", Desc: "Cost model calibration and threshold (§6.4)", Run: Config.CostModelExp},
		{ID: "parallel", Desc: "Delta store append throughput vs clients (extension)", Run: Config.ParallelExp},
		{ID: "parmerge", Desc: "Parallel scan/merge/rebuild ablation vs worker count (extension)", Run: Config.ParallelMergeExp},
		{ID: "freshness", Desc: "Propagation amortization across analytics batches (extension)", Run: Config.FreshnessExp},
		{ID: "faults", Desc: "Propagation under injected GPU faults: retry/fallback/degraded ladder (extension)", Run: Config.FaultsExp},
		{ID: "obs", Desc: "Observability instrumentation overhead: observer on vs off (extension)", Run: Config.ObsExp},
		{ID: "shards", Desc: "Sharded engine: 2PC commit cost and stitched analytics vs shard count (extension)", Run: Config.ShardsExp},
		{ID: "shardfaults", Desc: "Shard fault-domain storm: online isolation, shedding and recovery (extension)", Run: Config.ShardFaultsExp},
		{ID: "reqtrace", Desc: "Request-path tracing overhead: traced vs sampled-out HTTP commits (extension)", Run: Config.ReqTraceExp},
		{ID: "groupcommit", Desc: "Durable commit throughput vs committers with WAL group commit (extension)", Run: Config.GroupCommitExp},
	}
}

// ByID finds an experiment.
func ByID(id string) (Experiment, error) {
	for _, e := range All() {
		if e.ID == id {
			return e, nil
		}
	}
	var ids []string
	for _, e := range All() {
		ids = append(ids, e.ID)
	}
	sort.Strings(ids)
	return Experiment{}, fmt.Errorf("experiments: unknown id %q (have %v)", id, ids)
}
