package experiments

import (
	"errors"
	"time"

	"h2tap/internal/faultinject"
	"h2tap/internal/gpu"
	"h2tap/internal/htap"
	"h2tap/internal/workload"
)

// faultScenario is one row family of the fault-ladder ablation: which
// device operations fault, how, and whether the device heals at the end.
type faultScenario struct {
	name string
	kind faultinject.GPUFaultKind
	// ops lists the device operations armed before every propagation
	// (transient) or once up front (persistent); empty means fault-free.
	staticOps, dynOps []string
}

// FaultsExp is an extension quantifying the §5e escalation ladder: the
// same update/propagate workload runs fault-free, under a transient fault
// on every replica apply (absorbed by retries), and under a persistent
// device fault (retries exhaust, the rebuild fallback fails too, the
// engine degrades and recovers only after the device heals). Reported per
// scenario: apply attempts, wall time burned by retries, fallback
// rebuilds, degraded cycles, the worst staleness backlog while degraded,
// and whether the post-heal cycle recovered with zero scrub divergence.
func (c Config) FaultsExp() *Table {
	c = c.norm()
	t := &Table{
		ID:    "faults",
		Title: "Propagation under injected GPU faults: retry/fallback/degraded ladder (SF1)",
		Columns: []string{"scenario", "replica", "cycles", "attempts", "retry-wall",
			"fallbacks", "degraded-cycles", "max-pending", "recovered", "scrub-ok"},
	}
	updatesPerCycle := c.queries(20_000)
	const cycles = 3

	scenarios := []faultScenario{
		{name: "clean"},
		{name: "transient", kind: faultinject.Transient,
			staticOps: []string{faultinject.GPUReplace, faultinject.GPUReplaceStreamed},
			dynOps:    []string{faultinject.GPUIngest}},
		// Persistent faults hit the delta apply AND the rebuild fallback's
		// upload, so every rung fails until the device heals.
		{name: "persistent+heal", kind: faultinject.Persistent,
			staticOps: []string{faultinject.GPUReplace, faultinject.GPUReplaceStreamed},
			dynOps:    []string{faultinject.GPUIngest, faultinject.GPUUpload}},
	}

	for _, sc := range scenarios {
		for _, replica := range []htap.ReplicaKind{htap.StaticCSR, htap.DynamicHash} {
			ops := sc.staticOps
			if replica == htap.DynamicHash {
				ops = sc.dynOps
			}
			row := c.runFaultScenario(replica, sc, ops, updatesPerCycle, cycles)
			t.AddRow(sc.name, replica, cycles, row.attempts, row.retryWall,
				row.fallbacks, row.degraded, row.maxPending, row.recovered, row.scrubOK)
		}
	}
	t.Note("extension experiment (not in the paper): expected shape — transient faults cost only retry-wall (attempts > cycles, zero degraded cycles); persistent faults degrade every cycle and pile up max-pending until the heal, after which one cycle recovers and the scrub finds zero divergence")
	return t
}

type faultRow struct {
	attempts   int
	retryWall  time.Duration
	fallbacks  int64
	degraded   int64
	maxPending int
	recovered  bool
	scrubOK    bool
}

// runFaultScenario drives one (scenario, replica) cell: cycles of mixed
// updates + propagation with the plan armed, then heal + one clean cycle
// + scrub.
func (c Config) runFaultScenario(replica htap.ReplicaKind, sc faultScenario, ops []string, updates, cycles int) faultRow {
	b := c.setup(1, captNone, false)
	dev := gpu.DefaultA100()
	plan := faultinject.NewGPUPlan()
	dev.SetFaultInjector(plan)
	eng, err := htap.NewEngine(b.store, htap.Config{
		Replica: replica,
		Device:  dev,
		Workers: c.Workers,
		// Tight backoffs keep the ablation fast; the ladder shape is
		// attempt-count-driven, not sleep-driven.
		Retry:   htap.RetryPolicy{MaxAttempts: 3, Backoff: 100 * time.Microsecond, MaxBackoff: 500 * time.Microsecond},
		Obs:     c.Obs,
		OnCycle: c.OnCycle,
	})
	if err != nil {
		panic(err)
	}
	gen := workload.NewGenerator(b.window(workload.HiDeg, windowFrac), b.ds.Posts, c.Seed)

	arm := func(n int64) {
		for _, op := range ops {
			plan.Arm(op, n, sc.kind)
		}
	}
	if sc.kind == faultinject.Persistent && len(ops) > 0 {
		arm(1)
	}

	var row faultRow
	for cyc := 0; cyc < cycles; cyc++ {
		b.runOps(gen.Mixed(updates))
		if sc.kind == faultinject.Transient && len(ops) > 0 {
			arm(1) // re-arm: fail the first apply of every cycle once
		}
		rep, err := eng.Propagate()
		if err != nil && !errors.Is(err, faultinject.ErrGPUInjected) {
			panic(err)
		}
		row.attempts += rep.Attempts
		row.retryWall += rep.RetryWall
		if p := rep.Staleness.PendingRecords; p > row.maxPending {
			row.maxPending = p
		}
	}
	row.fallbacks = eng.FallbackRebuilds()
	row.degraded = eng.DegradedCycles()

	plan.Heal()
	if _, err := eng.Propagate(); err != nil {
		panic(err)
	}
	h, _ := eng.Health()
	row.recovered = h == htap.Healthy && eng.Fresh()
	sr, err := eng.Scrub()
	if err != nil {
		panic(err)
	}
	row.scrubOK = !sr.Diverged
	return row
}
