// Package experiments regenerates every table and figure of the paper's
// evaluation (§6). Each experiment returns a Table whose rows mirror the
// series of the corresponding plot; cmd/h2tap-bench prints them and
// EXPERIMENTS.md records paper-vs-measured shapes.
//
// Scaling: the paper's runs use LDBC SNB SF 1–30 and 20k–200k queries on a
// 32-core server. The default Config divides dataset sizes by Downscale and
// query counts by QueryScale so the full suite runs in minutes on a laptop;
// shapes (who wins, scaling trends, crossovers) are preserved because every
// mechanism is the real implementation, only sizes shrink. Use -full in
// cmd/h2tap-bench to approach paper sizes.
package experiments

import (
	"fmt"
	"io"
	"strings"
	"time"

	"h2tap/internal/csr"
	"h2tap/internal/delta"
	"h2tap/internal/deltai"
	"h2tap/internal/deltastore"
	"h2tap/internal/graph"
	"h2tap/internal/htap"
	"h2tap/internal/ldbc"
	"h2tap/internal/mvto"
	"h2tap/internal/obs"
	"h2tap/internal/relstore"
	"h2tap/internal/workload"
)

// Config scales and seeds the experiment suite.
type Config struct {
	// Downscale divides the per-SF dataset budgets (default 25).
	Downscale int
	// QueryScale divides the paper's query counts (default 100: the
	// paper's 50k-200k become 500-2000).
	QueryScale int
	// RMATScale is the Graph500-like scale for Table 1 (default 15; the
	// paper uses 24).
	RMATScale int
	// Workers is the propagation worker count for engine-based experiments
	// and an extra series point for the parmerge ablation (0 = the
	// GOMAXPROCS default).
	Workers int
	Seed    int64

	// Shards, when > 1, restricts the shards experiment to comparing the
	// single-domain baseline against exactly this shard count instead of
	// sweeping 1, 2, 4, 8 (cmd/h2tap-bench passes -shards here).
	Shards int

	// Obs, when set, wires every engine-based experiment's engine into the
	// observability layer (cmd/h2tap-bench passes it when -obs is set).
	Obs *obs.Observer
	// OnCycle, when set, receives every propagation report from
	// engine-based experiments (the bench's per-cycle JSON stream).
	OnCycle func(*htap.PropagationReport)
}

// Default returns the laptop-scale configuration. RMATScale 17 keeps
// Table 1's CPU-analytics-vs-propagation ratios in the paper's regime
// (compute-heavy analytics dwarf propagation, BFS does not).
func Default() Config {
	return Config{Downscale: 25, QueryScale: 100, RMATScale: 17, Seed: 1}
}

// Full returns a configuration approaching the paper's sizes. Expect long
// runtimes and tens of GB of memory.
func Full() Config {
	return Config{Downscale: 1, QueryScale: 1, RMATScale: 24, Seed: 1}
}

func (c Config) norm() Config {
	if c.Downscale == 0 {
		c.Downscale = 25
	}
	if c.QueryScale == 0 {
		c.QueryScale = 100
	}
	if c.RMATScale == 0 {
		c.RMATScale = 15
	}
	return c
}

// queries scales a paper query count.
func (c Config) queries(paper int) int {
	n := paper / c.QueryScale
	if n < 10 {
		n = 10
	}
	return n
}

// Table is one experiment's output: rows mirroring the paper plot's series.
type Table struct {
	ID      string // e.g. "fig3"
	Title   string
	Columns []string
	Rows    [][]string
	Notes   []string
}

// AddRow appends a row, formatting each cell with %v.
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case time.Duration:
			row[i] = fmtDur(v)
		case float64:
			row[i] = fmt.Sprintf("%.3f", v)
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.Rows = append(t.Rows, row)
}

// Note appends a free-form note printed under the table.
func (t *Table) Note(format string, args ...any) {
	t.Notes = append(t.Notes, fmt.Sprintf(format, args...))
}

// JSON renders the table as a structured object (used by h2tap-bench
// -json for machine-readable regression tracking).
func (t *Table) JSON() map[string]any {
	rows := make([]map[string]string, 0, len(t.Rows))
	for _, r := range t.Rows {
		m := make(map[string]string, len(t.Columns))
		for i, c := range t.Columns {
			if i < len(r) {
				m[c] = r[i]
			}
		}
		rows = append(rows, m)
	}
	return map[string]any{
		"id":    t.ID,
		"title": t.Title,
		"rows":  rows,
		"notes": t.Notes,
	}
}

// Fprint renders the table.
func (t *Table) Fprint(w io.Writer) {
	fmt.Fprintf(w, "== %s: %s ==\n", t.ID, t.Title)
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, r := range t.Rows {
		for i, cell := range r {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	printRow := func(cells []string) {
		var b strings.Builder
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		fmt.Fprintln(w, strings.TrimRight(b.String(), " "))
	}
	printRow(t.Columns)
	var sep []string
	for _, wd := range widths {
		sep = append(sep, strings.Repeat("-", wd))
	}
	printRow(sep)
	for _, r := range t.Rows {
		printRow(r)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(w, "note: %s\n", n)
	}
	fmt.Fprintln(w)
}

func fmtDur(d time.Duration) string {
	switch {
	case d >= time.Second:
		return fmt.Sprintf("%.3fs", d.Seconds())
	case d >= time.Millisecond:
		return fmt.Sprintf("%.3fms", float64(d)/float64(time.Millisecond))
	default:
		return fmt.Sprintf("%.1fµs", float64(d)/float64(time.Microsecond))
	}
}

func fmtBytes(n uint64) string {
	switch {
	case n >= 1<<30:
		return fmt.Sprintf("%.2fGB", float64(n)/(1<<30))
	case n >= 1<<20:
		return fmt.Sprintf("%.2fMB", float64(n)/(1<<20))
	case n >= 1<<10:
		return fmt.Sprintf("%.2fKB", float64(n)/(1<<10))
	default:
		return fmt.Sprintf("%dB", n)
	}
}

// capturerKind selects the delta mechanism under test.
type capturerKind int

const (
	captNone capturerKind = iota // the paper's "Baseline": no delta capture
	captFE                       // DELTA_FE
	captI                        // DELTA_I
	captR                        // relational conversion (§6.8)
)

func (k capturerKind) String() string {
	switch k {
	case captFE:
		return "DELTA_FE"
	case captI:
		return "DELTA_I"
	case captR:
		return "R"
	default:
		return "Baseline"
	}
}

// bench is one prepared store + dataset + capturer, ready to run a
// workload.
type bench struct {
	store  *graph.Store
	ds     *ldbc.Dataset
	loadTS mvto.TS
	base   *csr.CSR

	fe *deltastore.Store
	di *deltai.Store
	rl *relstore.Store
}

// setup loads a fresh store with the SF dataset and registers the chosen
// capturer. buildCSR controls whether the initial replica CSR is built
// (needed for propagation experiments).
func (c Config) setup(sf float64, kind capturerKind, buildCSR bool) *bench {
	ds := ldbc.GenerateSNB(ldbc.SNBConfig{SF: sf, Downscale: c.Downscale, Seed: c.Seed})
	s := graph.NewStore()
	ts, err := ds.Load(s)
	if err != nil {
		panic(fmt.Sprintf("experiments: load SF%v: %v", sf, err))
	}
	b := &bench{store: s, ds: ds, loadTS: ts}
	switch kind {
	case captFE:
		b.fe = deltastore.NewVolatile()
		s.AddCapturer(b.fe)
	case captI:
		b.di = deltai.New(s)
		s.AddCapturer(b.di)
	case captR:
		b.rl = relstore.New(s)
		s.AddCapturer(b.rl)
	}
	if buildCSR {
		b.base = csr.Build(s, ts)
	}
	return b
}

// window picks the §6.3 degree window over Person nodes.
func (b *bench) window(kind workload.WindowKind, frac int) []graph.NodeID {
	size := len(b.ds.Persons) / frac
	if size < 10 {
		size = 10
	}
	return workload.DegreeWindow(b.store, b.loadTS, b.ds.Persons, kind, size)
}

// runOps executes a prepared op stream and reports the §6.3 transactional
// update time.
func (b *bench) runOps(ops []workload.Op) workload.Result {
	return workload.Run(b.store, ops)
}

// deltaBytes reports the capturer's §6.3 footprint metric.
func (b *bench) deltaBytes() uint64 {
	switch {
	case b.fe != nil:
		return b.fe.ArrayBytes()
	case b.di != nil:
		return b.di.ArrayBytes()
	case b.rl != nil:
		return b.rl.ArrayBytes()
	default:
		return 0
	}
}

// records reports the capturer's appended delta count.
func (b *bench) records() uint64 {
	switch {
	case b.fe != nil:
		return b.fe.Records()
	case b.di != nil:
		return b.di.Records()
	case b.rl != nil:
		return b.rl.Records()
	default:
		return 0
	}
}

// propagate measures one full propagation cycle against the bench's base
// CSR and returns (scan, merge, records). The merged CSR replaces base.
func (b *bench) propagate(tp mvto.TS) (scan, merge time.Duration, records int) {
	switch {
	case b.fe != nil:
		t0 := time.Now()
		batch := b.fe.Scan(tp)
		scan = time.Since(t0)
		t1 := time.Now()
		merged, _ := csr.Merge(b.base, batch)
		merge = time.Since(t1)
		b.base = merged
		return scan, merge, batch.Records
	case b.di != nil:
		t0 := time.Now()
		snap := b.di.Scan(tp)
		scan = time.Since(t0)
		t1 := time.Now()
		merged := deltai.MergeCSR(b.base, snap)
		merge = time.Since(t1)
		b.base = merged
		return scan, merge, snap.Records
	case b.rl != nil:
		t0 := time.Now()
		snap := b.rl.Scan(tp)
		scan = time.Since(t0)
		t1 := time.Now()
		merged := relstore.MergeCSR(b.base, snap)
		merge = time.Since(t1)
		b.base = merged
		return scan, merge, snap.Records
	default:
		return 0, 0, 0
	}
}

// opPanels enumerates the five Fig 3 panels with their paper query counts.
type opPanel struct {
	name    string
	op      workload.OpKind
	mixed   bool
	queries []int // paper-scale counts, scaled by Config.queries
	windows []workload.WindowKind
	// winFrac is the update-window size as a fraction of the Person
	// population (1 = all persons). Node deletion consumes its window, so
	// it gets the whole population.
	winFrac int
}

func panels() []opPanel {
	lohi := []workload.WindowKind{workload.LoDeg, workload.HiDeg}
	hi := []workload.WindowKind{workload.HiDeg}
	return []opPanel{
		{name: "insert-node", op: workload.InsertNode, queries: []int{50_000, 125_000, 200_000}, windows: lohi, winFrac: windowFrac},
		{name: "delete-node", op: workload.DeleteNode, queries: []int{50_000, 125_000, 200_000}, windows: lohi, winFrac: 1},
		{name: "insert-relationship", op: workload.InsertRel, queries: []int{50_000, 125_000, 200_000}, windows: lohi, winFrac: windowFrac},
		// §6.3: delete relationship and mixed are evaluated for high-degree
		// windows only (deletes are bounded by the window's out-degree).
		{name: "delete-relationship", op: workload.DeleteRel, queries: []int{20_000, 70_000, 120_000}, windows: hi, winFrac: windowFrac},
		{name: "mixed", mixed: true, queries: []int{50_000, 100_000}, windows: hi, winFrac: windowFrac},
	}
}

// genOps builds the op stream for a panel.
func (b *bench) genOps(p opPanel, win []graph.NodeID, n int, seed int64) []workload.Op {
	g := workload.NewGenerator(win, b.ds.Posts, seed)
	if p.mixed {
		return g.Mixed(n)
	}
	return g.Ops(p.op, n)
}

// syntheticDeltas feeds n single-edge-insert deltas into a DELTA_FE store
// (used by scan-scaling experiments that need delta counts independent of
// workload execution time).
func syntheticDeltas(fe *deltastore.Store, n int, nodeRange uint64, seed int64) {
	r := newRand(seed)
	for i := 0; i < n; i++ {
		fe.Capture(&delta.TxDelta{
			TS: mvto.TS(i + 1),
			Nodes: []delta.NodeDelta{{
				Node: uint64(r.Intn(int(nodeRange))),
				Ins:  []delta.Edge{{Dst: uint64(r.Intn(int(nodeRange))), W: 1}},
			}},
		})
	}
}
