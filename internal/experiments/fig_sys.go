package experiments

import (
	"fmt"
	"math/rand"
	"sync"
	"time"

	"h2tap/internal/analytics"
	"h2tap/internal/csr"
	"h2tap/internal/dyngraph"
	"h2tap/internal/gpu"
	"h2tap/internal/graph"
	"h2tap/internal/htap"
	"h2tap/internal/ldbc"
	"h2tap/internal/sim"
	"h2tap/internal/sortledton"
	"h2tap/internal/workload"
)

// rmatSetup loads the Graph500-like RMAT graph used by §6.7's comparison.
func (c Config) rmatSetup() (*graph.Store, *ldbc.Dataset) {
	ds := ldbc.GenerateRMAT(ldbc.RMATConfig{Scale: c.RMATScale, Seed: c.Seed})
	s := graph.NewStore()
	if _, err := ds.Load(s); err != nil {
		panic(fmt.Sprintf("experiments: load RMAT: %v", err))
	}
	return s, ds
}

// rmatUpdates applies n single-edge update transactions (70% inserts, 30%
// deletes) to the store, feeding whatever capturers are registered.
func rmatUpdates(s *graph.Store, n int, seed int64) {
	r := rand.New(rand.NewSource(seed))
	slots := int(s.NumNodeSlots())
	for i := 0; i < n; i++ {
		tx := s.Begin()
		src := uint64(r.Intn(slots))
		var err error
		if r.Intn(10) < 7 {
			_, err = tx.AddRel(src, uint64(r.Intn(slots)), "edge", float64(r.Intn(9)+1))
		} else {
			rels, oerr := tx.OutRels(src)
			if oerr != nil || len(rels) == 0 {
				tx.Abort()
				continue
			}
			err = tx.DeleteRel(rels[r.Intn(len(rels))].ID)
		}
		if err != nil {
			tx.Abort()
			continue
		}
		tx.Commit()
	}
}

// Table1 — HTAP vs H2TAP analytics latency (§6.7): Sortledton running
// analytics on CPU concurrently with updates, versus DELTA_FE update
// propagation plus analytics on the (simulated) GPU, for BFS / PR / SSSP on
// the Graph500-like RMAT graph with ~2M (scaled) pending deltas. Expected
// shape: DELTA_FE wins on compute-heavy analytics (PR, SSSP); propagation
// dominates its latency, so BFS does not pay off.
func (c Config) Table1() *Table {
	c = c.norm()
	t := &Table{
		ID:    "table1",
		Title: fmt.Sprintf("HTAP vs H2TAP analytics latency (RMAT scale %d)", c.RMATScale),
		Columns: []string{"algorithm", "Sortledton-CPU", "DELTA_FE-propagation",
			"analytics-on-GPU(sim)", "DELTA_FE-sum"},
	}
	nUpd := c.queries(2_000_000)

	// H2TAP side: engine over the store, updates, then one propagation.
	store, _ := c.rmatSetup()
	eng, err := htap.NewEngine(store, htap.Config{Replica: htap.StaticCSR, Workers: c.Workers, Obs: c.Obs, OnCycle: c.OnCycle})
	if err != nil {
		panic(err)
	}
	rmatUpdates(store, nUpd, c.Seed)
	prop, err := eng.Propagate()
	if err != nil {
		panic(err)
	}
	propTotal := prop.Total.Total()

	// Sortledton side: a second store instance with the same data; updates
	// run concurrently with the analytics (no performance isolation).
	slStore, _ := c.rmatSetup()
	sl := sortledton.FromSnapshot(slStore, slStore.Oracle().LastCommitted())

	type algo struct {
		name string
		cpu  func() // run on sortledton
		kind htap.AnalyticsKind
	}
	algos := []algo{
		{"BFS", func() { analytics.BFS(sl, 0) }, htap.BFS},
		{"PR", func() { analytics.PageRank(sl, 10, 0.85) }, htap.PageRank},
		{"SSSP", func() { analytics.SSSP(sl, 0) }, htap.SSSP},
	}

	var cpuTimes, sums []time.Duration
	var kernels []sim.Duration
	for _, a := range algos {
		// Concurrent updater: the §6.7 interference.
		stop := make(chan struct{})
		var wg sync.WaitGroup
		wg.Add(1)
		go func() {
			defer wg.Done()
			r := rand.New(rand.NewSource(c.Seed + 99))
			slots := uint64(sl.NumVertexSlots())
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				src, dst := uint64(r.Intn(int(slots))), uint64(r.Intn(int(slots)))
				if i%3 == 0 {
					sl.DeleteEdge(src, dst)
				} else {
					sl.InsertEdge(src, dst, 1)
				}
			}
		}()
		t0 := time.Now()
		a.cpu()
		cpuTime := time.Since(t0)
		close(stop)
		wg.Wait()

		res, err := eng.RunAnalytics(a.kind, 0)
		if err != nil {
			panic(err)
		}
		sum := propTotal + time.Duration(res.KernelSim)
		t.AddRow(a.name, cpuTime, propTotal, time.Duration(res.KernelSim), sum)
		cpuTimes = append(cpuTimes, cpuTime)
		kernels = append(kernels, res.KernelSim)
		sums = append(sums, sum)
	}

	// §6.7's two dispatch scenarios.
	maxCPU, sumCPU := time.Duration(0), time.Duration(0)
	for _, d := range cpuTimes {
		if d > maxCPU {
			maxCPU = d
		}
		sumCPU += d
	}
	maxKernel := sim.Duration(0)
	for _, k := range kernels {
		if k > maxKernel {
			maxKernel = k
		}
	}
	sumFE := time.Duration(0)
	for _, s := range sums {
		sumFE += s
	}
	t.AddRow("all-arrive-together", maxCPU, propTotal, time.Duration(maxKernel),
		propTotal+time.Duration(maxKernel))
	t.AddRow("arrive-sequentially", sumCPU, "-", "-", sumFE)
	t.Note("expected shape: DELTA_FE wins PR and SSSP (GPU pays off); BFS is dominated by propagation; batching amortizes propagation")
	return t
}

// Sec66 — the §6.6 update-handling walkthrough on the SF10 graph with ~2M
// (scaled) deltas: append overhead, scan, both propagation paths and the
// rebuild comparison, plus the §1 motivating ratio (CSR rebuild vs SSSP
// execution).
func (c Config) Sec66() *Table {
	c = c.norm()
	t := &Table{
		ID:      "sec66",
		Title:   "Update handling walkthrough (SF10, ~2M scaled deltas)",
		Columns: []string{"quantity", "value"},
	}
	// The paper's regime: ~2M deltas against the ~30M-edge SF10 graph, a
	// ≈1:15 delta-to-edge ratio. Scale the update count off the actual
	// scaled graph size so the rebuild-vs-merge comparison happens in the
	// same regime (a mixed transaction appends ~1.4 deltas).
	bFE := c.setup(10, captFE, true)
	n := int(bFE.base.NumEdges() / 20)
	if paperN := c.queries(2_000_000); paperN < n {
		n = paperN
	}

	// Append overhead: same mixed workload with and without delta capture.
	p := opPanel{name: "mixed", mixed: true}
	bBase := c.setup(10, captNone, false)
	opsB := bBase.genOps(p, bBase.window(workload.HiDeg, windowFrac), n, c.Seed)
	baseT := bBase.runOps(opsB).Duration

	opsF := bFE.genOps(p, bFE.window(workload.HiDeg, windowFrac), n, c.Seed)
	feT := bFE.runOps(opsF).Duration
	over := feT - baseT
	if over < 0 {
		over = 0
	}
	t.AddRow("update txns executed", n)
	t.AddRow("deltas appended", bFE.records())
	t.AddRow("append overhead (DELTA_FE vs baseline)", over)

	// Update propagation phase.
	dev := gpu.DefaultA100()
	tp := bFE.store.Oracle().Begin()
	t0 := time.Now()
	batch := bFE.fe.Scan(tp.TS())
	scan := time.Since(t0)
	t.AddRow("delta store scan", scan)

	// Dynamic path: coalesced transfer + batched ingestion.
	dynTransfer := dev.HostToDevice(batch.TransferBytes())
	dyn := dyngraph.FromCSR(bFE.base)
	st := dyn.ApplyBatch(batch)
	ingest, err := dev.Launch(sim.KernelIngest, float64(st.Ops()))
	if err != nil {
		panic(err)
	}
	t.AddRow("dynamic: coalesced delta transfer (sim)", time.Duration(dynTransfer))
	t.AddRow("dynamic: batched ingestion (sim)", time.Duration(ingest))
	t.AddRow("dynamic: propagation total", scan+time.Duration(dynTransfer+ingest))

	// Static path: merge + CSR transfer, against rebuild + transfer.
	t1 := time.Now()
	merged, _ := csr.Merge(bFE.base, batch)
	merge := time.Since(t1)
	csrTransfer := dev.HostToDevice(merged.Bytes())
	staticTotal := scan + merge + time.Duration(csrTransfer)
	t.AddRow("static: delta merge", merge)
	t.AddRow("static: CSR transfer to GPU (sim)", time.Duration(csrTransfer))
	t.AddRow("static: propagation total", staticTotal)

	t2 := time.Now()
	rebuilt := csr.Build(bFE.store, tp.TS()-1)
	rebuild := time.Since(t2)
	tp.Commit()
	rebuildTotal := rebuild + time.Duration(dev.HostToDevice(rebuilt.Bytes()))
	t.AddRow("rebuild: CSR rebuild", rebuild)
	t.AddRow("rebuild: total (rebuild + transfer)", rebuildTotal)
	red := 100 * (1 - staticTotal.Seconds()/rebuildTotal.Seconds())
	t.AddRow("static path reduction vs rebuild", fmt.Sprintf("%.0f%%", red))

	// §1 motivation: rebuild vs SSSP-on-GPU execution time.
	_, work := analytics.SSSP(analytics.CSRGraph{C: merged}, 0)
	ssspSim, err := dev.Launch(sim.KernelSSSP, work.Edges)
	if err != nil {
		panic(err)
	}
	t.AddRow("SSSP on GPU (sim)", time.Duration(ssspSim))
	t.AddRow("rebuild / SSSP ratio (§1 motivation)",
		fmt.Sprintf("%.1fx", rebuildTotal.Seconds()/ssspSim.Seconds()))
	t.Note("paper §6.6: scan 2596ms, dynamic transfer 4.75ms, merge 2064ms, rebuild 33134ms, copy 721ms, 85%% reduction — shapes, not absolutes, are the target")
	return t
}
