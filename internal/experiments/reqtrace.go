package experiments

import (
	"fmt"
	"io"
	"net/http"
	"sort"
	"strings"
	"time"

	"h2tap"
	"h2tap/internal/server"
)

// ReqTraceExp measures the cost of request-path tracing on the served
// commit path: the same one-shot commit stream runs against one server
// three ways — sampler effectively off (every request pays a single
// atomic tick and no clock reads), the default 1-in-N sampling, and
// tracing every request (~15 spans across admission, engine, WAL — about
// 25 clock reads of pure measurement cost). Reported: total wall and
// per-request latency per configuration and the relative overhead, which
// the PR-4 discipline caps at 1% for the default sampling rate.
func (c Config) ReqTraceExp() *Table {
	c = c.norm()
	t := &Table{
		ID:      "reqtrace",
		Title:   "Request-path tracing overhead (one-shot HTTP commits, traced vs sampled out)",
		Columns: []string{"tracing", "requests", "total-wall", "per-request", "overhead"},
	}
	// The signal is ~2-4µs per traced request against a ~50µs loopback
	// commit, while the environment drifts by several percent over seconds
	// (frequency scaling, GC pacing, accumulated graph state slowing later
	// commits) and throws occasional multi-millisecond stalls. Coarse
	// run-at-a-time comparison is hopeless at that ratio: whichever
	// configuration runs later always loses. Instead the configurations
	// rotate REQUEST BY REQUEST against one server — drift and state
	// growth are shared exactly — and each configuration reports a
	// 5%-trimmed mean of its individual request times, discarding the
	// stalls while keeping the amortized cost of the 1-in-N samples.
	perCfg := c.queries(10_000)
	if perCfg < 100 {
		perCfg = 100
	}

	db, err := h2tap.Open(h2tap.Options{})
	if err != nil {
		panic(err)
	}
	defer db.Close()
	// The sequential stream runs well past the default per-session token
	// bucket (1k/s); open the throttle so the ablation measures tracing,
	// not admission shedding.
	srv, err := server.New(db, server.Config{
		Addr:        "127.0.0.1:0",
		SessionRate: 1e9, SessionBurst: 1e9,
	}, nil, nil)
	if err != nil {
		panic(err)
	}
	if err := srv.Start(); err != nil {
		panic(err)
	}
	defer srv.Close()
	url := "http://" + srv.Addr() + "/v1/commit"
	hc := &http.Client{Timeout: 10 * time.Second}
	body := `{"ops":[{"op":"add-node","label":"T"}]}`

	oneReq := func() time.Duration {
		start := time.Now()
		resp, err := hc.Post(url, "application/json", strings.NewReader(body))
		if err != nil {
			panic(err)
		}
		if resp.StatusCode != 200 {
			panic(fmt.Sprintf("commit = %d", resp.StatusCode))
		}
		// Drain before Close so the transport reuses the connection;
		// otherwise every request redials and the ablation measures TCP
		// connection churn, not tracing.
		io.Copy(io.Discard, resp.Body) //nolint:errcheck
		resp.Body.Close()
		return time.Since(start)
	}

	// Warm up (listener, allocator, MVTO chains), then rotate the three
	// configurations one request at a time.
	const sampledOut = 1 << 30
	srv.SetTraceSampling(sampledOut)
	for i := 0; i < 500; i++ {
		oneReq()
	}
	samples := []int{sampledOut, server.DefaultTraceSample, 1}
	times := make([][]time.Duration, len(samples))
	for i := range times {
		times[i] = make([]time.Duration, 0, perCfg)
	}
	for n := 0; n < perCfg; n++ {
		for i, s := range samples {
			srv.SetTraceSampling(s)
			times[i] = append(times[i], oneReq())
		}
	}
	trimmedMean := func(ds []time.Duration) time.Duration {
		s := append([]time.Duration(nil), ds...)
		sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
		cut := len(s) / 20 // 5% per tail
		s = s[cut : len(s)-cut]
		var sum time.Duration
		for _, d := range s {
			sum += d
		}
		return sum / time.Duration(len(s))
	}

	off := trimmedMean(times[0])
	t.AddRow("sampled out", perCfg, off*time.Duration(perCfg), off, "baseline")
	row := func(name string, i int) {
		m := trimmedMean(times[i])
		t.AddRow(name, perCfg, m*time.Duration(perCfg), m,
			fmtPct(100*(m.Seconds()-off.Seconds())/off.Seconds()))
	}
	row(fmt.Sprintf("default (1 in %d)", server.DefaultTraceSample), 1)
	row("every request", 2)
	t.Note("traced request records ~15 spans: admission rungs, mvto.begin, engine.apply, delta build/capture/publish, WAL enqueue→write→fsync→ack")
	t.Note("configurations rotate request-by-request against one server; per-request 5%%-trimmed mean over %d requests each; budget: overhead < 1%% at the default sampling rate", perCfg)
	return t
}
