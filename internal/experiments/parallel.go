package experiments

import (
	"sync"
	"time"

	"h2tap/internal/delta"
	"h2tap/internal/deltastore"
	"h2tap/internal/mvto"
)

// ParallelExp is an extension beyond the paper's evaluation: delta-store
// append throughput versus concurrent committing clients. §5.1 claims the
// append-only design "eliminates contention between concurrent transactions
// appending to the delta store" (benefit 2); this measures exactly that
// path — Capture calls racing from many goroutines — for DELTA_FE's atomic
// range reservation against the global-lock naive layout.
//
// (End-to-end transactional throughput is dominated by the main graph's own
// locks and allocator, which is why the paper argues the benefit at the
// store level; BenchmarkAblationParallelCommit covers the end-to-end view.)
func (c Config) ParallelExp() *Table {
	c = c.norm()
	t := &Table{
		ID:    "parallel",
		Title: "Delta store append throughput vs concurrent clients",
		Columns: []string{"clients", "DELTA_FE appends/s", "NaiveLock appends/s",
			"FE/Naive"},
	}
	n := c.queries(4_000_000)
	if n < 10_000 {
		n = 10_000
	}
	deltas := make([]*delta.TxDelta, 4096)
	for i := range deltas {
		deltas[i] = &delta.TxDelta{TS: mvto.TS(i + 1), Nodes: []delta.NodeDelta{{
			Node: uint64(i) % 997,
			Ins:  []delta.Edge{{Dst: uint64(i * 3), W: 1}, {Dst: uint64(i*3 + 1), W: 2}},
			Del:  []uint64{uint64(i * 5)},
		}}}
	}

	measure := func(capture func(*delta.TxDelta), clients int) float64 {
		best := 0.0
		for rep := 0; rep < 3; rep++ {
			var wg sync.WaitGroup
			start := time.Now()
			for w := 0; w < clients; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					for i := w; i < n; i += clients {
						capture(deltas[i%len(deltas)])
					}
				}(w)
			}
			wg.Wait()
			if tps := float64(n) / time.Since(start).Seconds(); tps > best {
				best = tps
			}
		}
		return best
	}

	for _, clients := range []int{1, 2, 4, 8} {
		fe := deltastore.NewVolatile()
		feTPS := measure(fe.Capture, clients)
		nv := deltastore.NewNaive()
		nvTPS := measure(nv.Capture, clients)
		t.AddRow(clients, int(feTPS), int(nvTPS), formatRatio(feTPS/nvTPS))
	}
	t.Note("extension experiment (not in the paper): expected shape — DELTA_FE append throughput scales with clients (reservation-based, contention-free); the global-lock layout flattens or degrades")
	return t
}
