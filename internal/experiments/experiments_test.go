package experiments

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"h2tap/internal/csr"
	"h2tap/internal/workload"
)

// tiny is a configuration small enough for CI smoke runs.
func tiny() Config {
	return Config{Downscale: 200, QueryScale: 2000, RMATScale: 9, Seed: 1}
}

func TestEveryExperimentRuns(t *testing.T) {
	for _, e := range All() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			tab := e.Run(tiny())
			if tab.ID != e.ID {
				t.Fatalf("table id = %q, want %q", tab.ID, e.ID)
			}
			if len(tab.Rows) == 0 {
				t.Fatal("experiment produced no rows")
			}
			for _, r := range tab.Rows {
				if len(r) != len(tab.Columns) {
					t.Fatalf("row width %d != %d columns: %v", len(r), len(tab.Columns), r)
				}
			}
			var buf bytes.Buffer
			tab.Fprint(&buf)
			if !strings.Contains(buf.String(), tab.Title) {
				t.Fatal("print lost the title")
			}
		})
	}
}

func TestByID(t *testing.T) {
	e, err := ByID("fig3")
	if err != nil || e.ID != "fig3" {
		t.Fatalf("ByID(fig3) = %v, %v", e, err)
	}
	if _, err := ByID("fig99"); err == nil {
		t.Fatal("unknown id accepted")
	}
}

func TestQueryScaling(t *testing.T) {
	c := Config{QueryScale: 100}.norm()
	if c.queries(50_000) != 500 {
		t.Fatalf("queries = %d", c.queries(50_000))
	}
	if c.queries(100) != 10 {
		t.Fatalf("minimum clamp broken: %d", c.queries(100))
	}
}

func TestTableFormatting(t *testing.T) {
	tab := &Table{ID: "x", Title: "T", Columns: []string{"a", "bbb"}}
	tab.AddRow(1500*time.Millisecond, 42)
	tab.AddRow(2500*time.Microsecond, 0.5)
	tab.Note("hello %d", 7)
	var buf bytes.Buffer
	tab.Fprint(&buf)
	out := buf.String()
	for _, want := range []string{"1.500s", "2.500ms", "note: hello 7"} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
}

func TestFmtBytes(t *testing.T) {
	for in, want := range map[uint64]string{
		10:      "10B",
		2048:    "2.00KB",
		3 << 20: "3.00MB",
		5 << 30: "5.00GB",
	} {
		if got := fmtBytes(in); got != want {
			t.Errorf("fmtBytes(%d) = %q, want %q", in, got, want)
		}
	}
}

// Shape assertions on a small-but-meaningful config: the headline claims
// of the paper must hold in our reproduction.
func TestShapesHold(t *testing.T) {
	if testing.Short() {
		t.Skip("shape checks need a non-trivial workload")
	}
	c := Config{Downscale: 100, QueryScale: 500, RMATScale: 10, Seed: 1}

	// Fig 4 shape: DELTA_I footprint strictly larger than DELTA_FE on the
	// HiDeg insert-relationship panel.
	p := panels()[2] // insert-relationship
	bFE, _, _ := c.cell(p, workload.HiDeg, captFE, 50_000, false)
	bDI, _, _ := c.cell(p, workload.HiDeg, captI, 50_000, false)
	if bDI.deltaBytes() <= bFE.deltaBytes() {
		t.Fatalf("DELTA_I footprint %d not above DELTA_FE %d", bDI.deltaBytes(), bFE.deltaBytes())
	}

	// Fig 9 shape: rebuild time grows with scale factor.
	b1 := c.setup(1, captNone, false)
	b10 := c.setup(10, captNone, false)
	t0 := time.Now()
	c1 := csr.Build(b1.store, b1.loadTS)
	r1 := time.Since(t0)
	t1 := time.Now()
	c10 := csr.Build(b10.store, b10.loadTS)
	r10 := time.Since(t1)
	if c10.NumEdges() <= c1.NumEdges() {
		t.Fatal("SF10 graph not larger than SF1")
	}
	if r10 <= r1/2 {
		t.Fatalf("rebuild did not grow with size: SF1 %v, SF10 %v", r1, r10)
	}
}
