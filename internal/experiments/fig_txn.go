package experiments

import (
	"fmt"
	"math/rand"
	"runtime"
	"time"

	"h2tap/internal/workload"
)

func newRand(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }

// windowFrac is the fraction of the Person population forming the update
// window (paper §6.3 slides a fixed window over the degree-sorted IDs).
const windowFrac = 10

// cell runs one (panel, window, capturer, queries) measurement on a fresh
// SF1-scale store: the Fig 3 grid's atomic unit. It returns the bench for
// follow-up measurements (footprint, propagation).
//
// Short cells are noisy (GC, first-touch chunk allocation), so measurements
// under repeatBelow are repeated and the minimum kept — the usual
// microbenchmarking discipline.
const repeatBelow = 100 * time.Millisecond

func (c Config) cell(p opPanel, win workload.WindowKind, kind capturerKind, paperQ int, buildCSR bool) (*bench, int, time.Duration) {
	frac := p.winFrac
	if frac == 0 {
		frac = windowFrac
	}
	run := func() (*bench, int, time.Duration) {
		runtime.GC() // park accumulated garbage outside the timed region
		b := c.setup(1, kind, buildCSR)
		n := c.queries(paperQ)
		ops := b.genOps(p, b.window(win, frac), n, c.Seed+int64(paperQ))
		res := b.runOps(ops)
		return b, n, res.Duration
	}
	b, n, d := run()
	for rep := 0; d < repeatBelow && rep < 2; rep++ {
		b2, _, d2 := run()
		if d2 < d {
			b, d = b2, d2
		}
	}
	return b, n, d
}

// Fig3 — Transactional Update Time: DELTA_I vs DELTA_FE vs Baseline across
// the five operation panels, Lo/HiDeg windows, increasing query counts.
// Expected shape (§6.3): DELTA_FE ≈ Baseline everywhere and insensitive to
// degree; DELTA_I slower, degree-sensitive, worst on insert-relationship.
func (c Config) Fig3() *Table {
	c = c.norm()
	t := &Table{
		ID:      "fig3",
		Title:   "Transactional update time (SF1)",
		Columns: []string{"panel", "window", "queries", "Baseline", "DELTA_FE", "DELTA_I"},
	}
	for _, p := range panels() {
		for _, win := range p.windows {
			for _, q := range p.queries {
				_, n, base := c.cell(p, win, captNone, q, false)
				_, _, fe := c.cell(p, win, captFE, q, false)
				_, _, di := c.cell(p, win, captI, q, false)
				t.AddRow(p.name, win, n, base, fe, di)
			}
		}
	}
	t.Note("expected shape: DELTA_FE tracks Baseline and is degree-insensitive; DELTA_I is slower, especially HiDeg insert-relationship")
	return t
}

// Fig4 — Delta Memory Footprint: bytes stored in the delta structures after
// each panel's workload. Expected shape: DELTA_FE orders of magnitude below
// DELTA_I; DELTA_FE independent of node degree.
func (c Config) Fig4() *Table {
	c = c.norm()
	t := &Table{
		ID:      "fig4",
		Title:   "Delta memory footprint (SF1)",
		Columns: []string{"panel", "window", "queries", "DELTA_FE", "DELTA_I", "ratio"},
	}
	for _, p := range panels() {
		for _, win := range p.windows {
			for _, q := range p.queries {
				bFE, n, _ := c.cell(p, win, captFE, q, false)
				bDI, _, _ := c.cell(p, win, captI, q, false)
				fe, di := bFE.deltaBytes(), bDI.deltaBytes()
				ratio := "-"
				if fe > 0 {
					ratio = formatRatio(float64(di) / float64(fe))
				}
				t.AddRow(p.name, win, n, fmtBytes(fe), fmtBytes(di), ratio)
			}
		}
	}
	t.Note("expected shape: DELTA_I footprint orders of magnitude larger, growing with node degree; DELTA_FE degree-independent")
	return t
}

// Fig5 — Update Propagation Time: delta store scan + CSR merge after each
// panel's workload, DELTA_I vs DELTA_FE. Expected shape: DELTA_FE faster in
// all cases and unaffected by node degree.
func (c Config) Fig5() *Table {
	c = c.norm()
	t := &Table{
		ID:      "fig5",
		Title:   "Update propagation time (scan + merge, SF1)",
		Columns: []string{"panel", "window", "queries", "DELTA_FE", "DELTA_I"},
	}
	prop := func(p opPanel, win workload.WindowKind, kind capturerKind, q int) (int, time.Duration) {
		best := time.Duration(1 << 62)
		var n int
		for rep := 0; rep < 3; rep++ {
			var b *bench
			b, n, _ = c.cell(p, win, kind, q, true)
			tp := b.store.Oracle().Begin()
			s, m, _ := b.propagate(tp.TS())
			tp.Commit()
			if s+m < best {
				best = s + m
			}
			if best > repeatBelow {
				break
			}
		}
		return n, best
	}
	for _, p := range panels() {
		for _, win := range p.windows {
			for _, q := range p.queries {
				n, fe := prop(p, win, captFE, q)
				_, di := prop(p, win, captI, q)
				t.AddRow(p.name, win, n, fe, di)
			}
		}
	}
	t.Note("expected shape: DELTA_FE propagates faster in all cases, gap widening with query count and degree")
	return t
}

// Fig6 — Baseline vs DELTA_FE (HiDeg, SF1) per panel: the two curves the
// paper shows lying on top of each other.
func (c Config) Fig6() *Table {
	c = c.norm()
	t := &Table{
		ID:      "fig6",
		Title:   "Transactional update time: Baseline vs DELTA_FE (HiDeg, SF1)",
		Columns: []string{"panel", "queries", "Baseline", "DELTA_FE", "overhead%"},
	}
	for _, p := range panels() {
		for _, q := range p.queries {
			_, n, base := c.cell(p, workload.HiDeg, captNone, q, false)
			_, _, fe := c.cell(p, workload.HiDeg, captFE, q, false)
			over := 100 * (fe.Seconds() - base.Seconds()) / base.Seconds()
			t.AddRow(p.name, n, base, fe, over)
		}
	}
	t.Note("expected shape: curves overlap — DELTA_FE append overhead is negligible")
	return t
}

// Fig7 — DELTA_I Delta Append Overhead: DELTA_I update time minus Baseline,
// per panel. Expected shape: overhead grows with query count, correlated
// with the delta footprint of Fig 4.
func (c Config) Fig7() *Table {
	c = c.norm()
	t := &Table{
		ID:      "fig7",
		Title:   "DELTA_I delta append overhead (HiDeg, SF1)",
		Columns: []string{"panel", "queries", "Baseline", "DELTA_I", "overhead"},
	}
	for _, p := range panels() {
		for _, q := range p.queries {
			_, n, base := c.cell(p, workload.HiDeg, captNone, q, false)
			_, _, di := c.cell(p, workload.HiDeg, captI, q, false)
			over := di - base
			if over < 0 {
				over = 0
			}
			t.AddRow(p.name, n, base, di, over)
		}
	}
	t.Note("expected shape: overhead grows with query count; it is the gap Fig 4's footprint predicts")
	return t
}

// Fig8 — Baseline vs DELTA_FE on the larger SF10 graph, mixed workload:
// validates degree-independence at scale.
func (c Config) Fig8() *Table {
	c = c.norm()
	t := &Table{
		ID:      "fig8",
		Title:   "Transactional update time: Baseline vs DELTA_FE (HiDeg, mixed, SF10)",
		Columns: []string{"queries", "Baseline", "DELTA_FE", "overhead%"},
	}
	p := opPanel{name: "mixed", mixed: true}
	measure := func(kind capturerKind, n int) time.Duration {
		best := time.Duration(1 << 62)
		for rep := 0; rep < 3; rep++ {
			runtime.GC()
			b := c.setup(10, kind, false)
			ops := b.genOps(p, b.window(workload.HiDeg, windowFrac), n, c.Seed)
			if d := b.runOps(ops).Duration; d < best {
				best = d
			}
			if best > repeatBelow {
				break
			}
		}
		return best
	}
	for _, q := range []int{50_000, 100_000} {
		n := c.queries(q)
		base := measure(captNone, n)
		fe := measure(captFE, n)
		t.AddRow(n, base, fe, 100*(fe.Seconds()-base.Seconds())/base.Seconds())
	}
	t.Note("expected shape: update times remain similar at SF10 — no correlation between appended deltas and DELTA_FE update time")
	return t
}

func formatRatio(r float64) string {
	if r >= 100 {
		return fmt.Sprintf("%.0fx", r)
	}
	return fmt.Sprintf("%.1fx", r)
}
