package experiments

import (
	"fmt"
	"sort"
	"time"

	"h2tap/internal/csr"
	"h2tap/internal/deltastore"
)

// ParallelMergeExp is the ablation series for the parallel propagation
// pipeline (an extension beyond the paper's single-threaded propagation):
// delta store scan, CSR merge and CSR rebuild at several worker counts over
// the Fig 10 delta sizes on the SF10 graph. The speedup column compares
// each worker count's scan+merge against the serial run of the same batch.
// On a single-core host all counts collapse to the serial path and the
// speedups sit near 1×.
func (c Config) ParallelMergeExp() *Table {
	c = c.norm()
	t := &Table{
		ID:    "parmerge",
		Title: "Parallel propagation ablation: scan/merge/rebuild vs workers (SF10)",
		Columns: []string{"deltas", "workers", "scan", "merge", "rebuild",
			"scan+merge speedup"},
	}
	counts := []int{1, 2, 4, 8}
	if c.Workers > 0 {
		counts = append(counts, c.Workers)
		sort.Ints(counts)
		uniq := counts[:1]
		for _, w := range counts[1:] {
			if w != uniq[len(uniq)-1] {
				uniq = append(uniq, w)
			}
		}
		counts = uniq
	}
	b := c.setup(10, captNone, true)
	for _, n := range c.fig10Counts() {
		var serial time.Duration
		for _, w := range counts {
			scan, merge, rebuild := time.Duration(1<<62), time.Duration(1<<62), time.Duration(1<<62)
			for rep := 0; rep < 3; rep++ {
				fe := deltastore.NewVolatile()
				syntheticDeltas(fe, n, b.store.NumNodeSlots(), c.Seed)

				t0 := time.Now()
				batch := fe.ScanWorkers(1<<40, w)
				if d := time.Since(t0); d < scan {
					scan = d
				}
				t1 := time.Now()
				merged, _ := csr.MergeWorkers(b.base, batch, w)
				if d := time.Since(t1); d < merge {
					merge = d
				}
				_ = merged
				t2 := time.Now()
				_ = csr.BuildWorkers(b.store, b.loadTS, w)
				if d := time.Since(t2); d < rebuild {
					rebuild = d
				}
			}
			if w == 1 {
				serial = scan + merge
			}
			speedup := float64(serial) / float64(scan+merge)
			t.AddRow(n, w, scan, merge, rebuild, fmt.Sprintf("%.2f×", speedup))
		}
	}
	t.Note("expected shape: scan+merge speedup grows with workers up to the core count; rebuild parallelizes best (pure fan-out); single-core hosts stay at ~1×")
	return t
}
