package experiments

import (
	"fmt"
	"os"
	"path/filepath"
	"time"

	"h2tap/internal/csr"
	"h2tap/internal/deltastore"
	"h2tap/internal/htap"
	"h2tap/internal/pmem"
	"h2tap/internal/sim"
	"h2tap/internal/workload"
)

// Fig9 — CSR Rebuild and CSR Copy across scale factors 1, 3, 10, 30: the
// size-dependent cost components of §6.4's model. Expected shape: all three
// grow roughly linearly with graph size; rebuild ≫ copy; persistent copy a
// small constant factor above volatile.
func (c Config) Fig9() *Table {
	c = c.norm()
	t := &Table{
		ID:      "fig9",
		Title:   "CSR rebuild and copy vs scale factor",
		Columns: []string{"SF", "nodes", "edges", "rebuild", "copy(volatile)", "copy(persistent)"},
	}
	dir, err := os.MkdirTemp("", "h2tap-fig9-*")
	if err != nil {
		panic(err)
	}
	defer os.RemoveAll(dir)
	for _, sf := range []float64{1, 3, 10, 30} {
		b := c.setup(sf, captNone, false)

		t0 := time.Now()
		built := csr.Build(b.store, b.loadTS)
		rebuild := time.Since(t0)

		t1 := time.Now()
		cp := built.Copy()
		copyVol := time.Since(t1)
		_ = cp

		pool, err := pmem.Create(filepath.Join(dir, fmt.Sprintf("sf%v.pool", sf)),
			built.Bytes()*2+1<<20, sim.DefaultPMem())
		if err != nil {
			panic(err)
		}
		t2 := time.Now()
		if _, err := csr.PersistTo(pool, built); err != nil {
			panic(err)
		}
		copyPer := time.Since(t2) + time.Duration(pool.SimTime())
		pool.Close()

		t.AddRow(sf, built.NumNodes(), built.NumEdges(), rebuild, copyVol, copyPer)
	}
	t.Note("expected shape: all grow ~linearly with graph size; rebuild ≫ copy; persistent ≈ 2-4× volatile copy")
	return t
}

// fig10Counts returns the scaled delta counts standing in for the paper's
// 0.5M / 1M / 1.5M x-axis.
func (c Config) fig10Counts() []int {
	return []int{c.queries(500_000), c.queries(1_000_000), c.queries(1_500_000)}
}

// Fig10 — Update Propagation Time, detailed: total, scan vs merge, and the
// merge-modify component against delta count on the SF10 graph. Expected
// shape: scan grows strongly with delta count and dominates; merge stays in
// a band set by the copy cost; the modify component alone grows mildly.
func (c Config) Fig10() *Table {
	c = c.norm()
	t := &Table{
		ID:      "fig10",
		Title:   "Update propagation time detail vs #deltas (SF10)",
		Columns: []string{"deltas", "scan", "merge", "merge-modify", "total"},
	}
	b := c.setup(10, captNone, true)
	// Reference copy cost to split merge into copy + modify (§6.4).
	t0 := time.Now()
	_ = b.base.Copy()
	copyCost := time.Since(t0)

	for _, n := range c.fig10Counts() {
		scan, merge := time.Duration(1<<62), time.Duration(1<<62)
		for rep := 0; rep < 3; rep++ {
			fe := deltastore.NewVolatile()
			syntheticDeltas(fe, n, b.store.NumNodeSlots(), c.Seed)

			t1 := time.Now()
			batch := fe.Scan(1 << 40)
			if d := time.Since(t1); d < scan {
				scan = d
			}
			t2 := time.Now()
			merged, _ := csr.Merge(b.base, batch)
			if d := time.Since(t2); d < merge {
				merge = d
			}
			_ = merged
		}
		modify := merge - copyCost
		if modify < 0 {
			modify = 0
		}
		t.AddRow(n, scan, merge, modify, scan+merge)
	}
	t.Note("expected shape: scan correlates strongly with delta count and becomes dominant; merge bounded below by the CSR copy cost")
	return t
}

// Fig11 — Volatile vs Persistent delta store: (a) transactional update time
// under the mixed workload, (b) delta store scan time vs delta count.
// Persistent timings include the simulated DCPMM media cost. Expected
// shape: persistent close to volatile in both.
func (c Config) Fig11() *Table {
	c = c.norm()
	t := &Table{
		ID:      "fig11",
		Title:   "Volatile vs persistent delta store (SF10)",
		Columns: []string{"metric", "size", "volatile", "persistent(wall+sim)"},
	}
	dir, err := os.MkdirTemp("", "h2tap-fig11-*")
	if err != nil {
		panic(err)
	}
	defer os.RemoveAll(dir)

	// (a) Transactional update time, mixed workload.
	p := opPanel{name: "mixed", mixed: true}
	for _, q := range []int{50_000, 100_000} {
		n := c.queries(q)
		bVol := c.setup(10, captFE, false)
		ops := bVol.genOps(p, bVol.window(workload.HiDeg, windowFrac), n, c.Seed)
		vol := bVol.runOps(ops).Duration

		bPer := c.setup(10, captNone, false)
		pool, err := pmem.Create(filepath.Join(dir, fmt.Sprintf("txn%d.pool", q)), 1<<30, sim.DefaultPMem())
		if err != nil {
			panic(err)
		}
		ds, err := deltastore.NewPersistent(pool)
		if err != nil {
			panic(err)
		}
		bPer.store.AddCapturer(ds)
		opsP := bPer.genOps(p, bPer.window(workload.HiDeg, windowFrac), n, c.Seed)
		wall := bPer.runOps(opsP).Duration
		per := wall + time.Duration(pool.SimTime())
		pool.Close()
		t.AddRow("txn-update-time", n, vol, per)
	}

	// (b) Delta store scan time vs delta count.
	nodeRange := uint64(c.queries(50_000) * 10)
	for _, n := range c.fig10Counts() {
		vol := deltastore.NewVolatile()
		syntheticDeltas(vol, n, nodeRange, c.Seed)
		t0 := time.Now()
		vol.Scan(1 << 40)
		volScan := time.Since(t0)

		pool, err := pmem.Create(filepath.Join(dir, fmt.Sprintf("scan%d.pool", n)), 2<<30, sim.DefaultPMem())
		if err != nil {
			panic(err)
		}
		per, err := deltastore.NewPersistent(pool)
		if err != nil {
			panic(err)
		}
		syntheticDeltas(per, n, nodeRange, c.Seed)
		pool.ResetSimTime() // isolate the scan's media cost from the appends'
		t1 := time.Now()
		per.Scan(1 << 40)
		perScan := time.Since(t1) + time.Duration(pool.SimTime())
		pool.Close()
		t.AddRow("delta-store-scan", n, volScan, perScan)
	}
	t.Note("expected shape: persistent within a small factor of volatile for both appends and scans")
	return t
}

// Fig12 — DELTA_FE vs R (relational conversion): transactional update time
// and delta store scan under the mixed workload. Expected shape: R slower
// on both axes — lookups and full-object copies at commit, MVCC-checked
// chain walks at scan.
func (c Config) Fig12() *Table {
	c = c.norm()
	t := &Table{
		ID:      "fig12",
		Title:   "DELTA_FE vs relational-style delta store R (SF1, mixed)",
		Columns: []string{"metric", "queries", "DELTA_FE", "R"},
	}
	p := opPanel{name: "mixed", mixed: true}
	measure := func(kind capturerKind, n int) (txn, scan time.Duration) {
		txn, scan = time.Duration(1<<62), time.Duration(1<<62)
		for rep := 0; rep < 3; rep++ {
			b := c.setup(1, kind, true)
			ops := b.genOps(p, b.window(workload.HiDeg, windowFrac), n, c.Seed)
			if d := b.runOps(ops).Duration; d < txn {
				txn = d
			}
			tp := b.store.Oracle().Begin()
			t0 := time.Now()
			if kind == captFE {
				b.fe.Scan(tp.TS())
			} else {
				b.rl.Scan(tp.TS())
			}
			if d := time.Since(t0); d < scan {
				scan = d
			}
			tp.Commit()
			if txn > repeatBelow && scan > repeatBelow {
				break
			}
		}
		return txn, scan
	}
	for _, q := range []int{40_000, 80_000, 120_000} {
		n := c.queries(q)
		feTxn, feScan := measure(captFE, n)
		rTxn, rScan := measure(captR, n)
		t.AddRow("txn-update-time", n, feTxn, rTxn)
		t.AddRow("delta-store-scan", n, feScan, rScan)
	}
	t.Note("expected shape: DELTA_FE faster on both metrics — graph-aware layout beats the direct relational conversion")
	return t
}

// CostModelExp — §6.4: calibrate the cost model on the SF10 graph, report
// the fitted coefficients and the delta-size threshold, and verify the
// crossover empirically.
func (c Config) CostModelExp() *Table {
	c = c.norm()
	t := &Table{
		ID:      "costmodel",
		Title:   "Cost model calibration and threshold (§6.4, SF10)",
		Columns: []string{"quantity", "value"},
	}
	b := c.setup(10, captNone, true)
	m, err := htap.Calibrate(b.store)
	if err != nil {
		panic(err)
	}
	edges := float64(b.base.NumEdges())
	th := m.Threshold(edges)
	t.AddRow("scan model (s)", fmt.Sprintf("%.3e + %.3e·n", m.Scan.A, m.Scan.B))
	t.AddRow("modify model (s)", fmt.Sprintf("%.3e + %.3e·n", m.Modify.A, m.Modify.B))
	t.AddRow("copy model (s)", fmt.Sprintf("%.3e + %.3e·E", m.Copy.A, m.Copy.B))
	t.AddRow("rebuild model (s)", fmt.Sprintf("%.3e + %.3e·E", m.Rebuild.A, m.Rebuild.B))
	t.AddRow("graph edges", int64(edges))
	t.AddRow("threshold (deltas)", th)

	// Empirical check on both sides of the threshold.
	for _, mult := range []float64{0.5, 2.0} {
		n := int(float64(th) * mult)
		if n < 16 {
			n = 16
		}
		fe := deltastore.NewVolatile()
		syntheticDeltas(fe, n, b.store.NumNodeSlots(), c.Seed)
		t0 := time.Now()
		batch := fe.Scan(1 << 40)
		merged, _ := csr.Merge(b.base, batch)
		_ = merged
		deltaPath := time.Since(t0)

		t1 := time.Now()
		_ = csr.Build(b.store, b.loadTS)
		rebuild := time.Since(t1)
		winner := "delta"
		if rebuild < deltaPath {
			winner = "rebuild"
		}
		t.AddRow(fmt.Sprintf("empirical @%.1f×threshold (n=%d)", mult, n),
			fmt.Sprintf("delta=%v rebuild=%v → %s wins", fmtDur(deltaPath), fmtDur(rebuild), winner))
	}
	t.Note("expected shape: delta path wins below the threshold, rebuild above")
	return t
}
