package experiments

import (
	"fmt"
	"math/rand"
	"time"

	"h2tap"
	"h2tap/internal/htap"
)

// ShardsExp is an extension measuring the sharded engine (DESIGN.md §5h):
// the same randomized transactional load runs against shard counts 1, 2, 4
// and 8, reporting commit throughput (single-shard fast path vs two-phase
// cross-shard commits), the fraction of transactions that crossed shards,
// and stitched cross-shard analytics latency against the single-domain
// baseline. Shards=1 goes through the unsharded engine — the row every
// other row is compared to.
func (c Config) ShardsExp() *Table {
	c = c.norm()
	t := &Table{
		ID:    "shards",
		Title: "Sharded engine: 2PC commit cost and stitched analytics vs shard count",
		Columns: []string{"shards", "tx", "cross-tx", "load-wall", "tx/s",
			"bfs-host", "bfs-kernel(sim)", "pr-host", "pr-kernel(sim)"},
	}

	nodes := c.queries(100_000)
	edges := 4 * nodes
	txOps := 8

	sweep := []int{1, 2, 4, 8}
	if c.Shards > 1 {
		sweep = []int{1, c.Shards}
	}
	for _, shards := range sweep {
		rng := rand.New(rand.NewSource(c.Seed))
		db, err := h2tap.Open(h2tap.Options{Shards: shards})
		if err != nil {
			panic(err)
		}

		type rwTx interface {
			AddNode(label string, props map[string]h2tap.Value) (uint64, error)
			AddRel(src, dst uint64, label string, weight float64) (uint64, error)
			Commit() error
		}
		begin := func() rwTx {
			if shards > 1 {
				tx, err := db.BeginSharded()
				if err != nil {
					panic(err)
				}
				return tx
			}
			return db.Begin()
		}
		crossTx := func(ids []uint64) bool {
			if shards <= 1 || db.Cluster() == nil {
				return false
			}
			p := db.Cluster().Partitioner()
			for _, id := range ids[1:] {
				if p.ShardOf(id) != p.ShardOf(ids[0]) {
					return true
				}
			}
			return false
		}

		ids := make([]uint64, 0, nodes)
		seen := make(map[[2]uint64]bool, edges)
		txs, cross := 0, 0
		start := time.Now()

		// Node-loading transactions.
		for len(ids) < nodes {
			tx := begin()
			batch := make([]uint64, 0, txOps)
			for i := 0; i < txOps && len(ids)+len(batch) < nodes; i++ {
				id, err := tx.AddNode("V", nil)
				if err != nil {
					panic(err)
				}
				batch = append(batch, id)
			}
			if err := tx.Commit(); err != nil {
				panic(err)
			}
			ids = append(ids, batch...)
			txs++
			if crossTx(batch) {
				cross++
			}
		}
		// Edge-loading transactions over random distinct pairs.
		added := 0
		for added < edges {
			tx := begin()
			touched := make([]uint64, 0, 2*txOps)
			for i := 0; i < txOps && added < edges; i++ {
				src := ids[rng.Intn(len(ids))]
				dst := ids[rng.Intn(len(ids))]
				if seen[[2]uint64{src, dst}] {
					continue
				}
				seen[[2]uint64{src, dst}] = true
				if _, err := tx.AddRel(src, dst, "e", 1); err != nil {
					panic(err)
				}
				touched = append(touched, src, dst)
				added++
			}
			if err := tx.Commit(); err != nil {
				panic(err)
			}
			txs++
			if crossTx(touched) {
				cross++
			}
		}
		loadWall := time.Since(start)

		run := func(kind htap.AnalyticsKind) (time.Duration, time.Duration) {
			res, err := db.RunAnalytics(kind, h2tap.NodeID(ids[0]))
			if err != nil {
				panic(err)
			}
			return res.HostWall, time.Duration(res.KernelSim)
		}
		bfsHost, bfsSim := run(htap.BFS)
		prHost, prSim := run(htap.PageRank)

		t.AddRow(shards, txs, cross, loadWall,
			fmt.Sprintf("%.0f", float64(txs)/loadWall.Seconds()),
			bfsHost, bfsSim, prHost, prSim)
		db.Close()
	}
	t.Note("extension experiment (not in the paper): expected shape — cross-shard transactions pay the 2PC prepare/decide round (lower tx/s as shard count grows); stitched analytics stay within a small factor of single-domain (composite build is host-side)")
	t.Note("%s", fmt.Sprintf("load: %d nodes, %d edges, %d ops/tx; Shards=1 is the unsharded engine", nodes, edges, txOps))
	return t
}
