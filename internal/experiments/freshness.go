package experiments

import (
	"fmt"
	"time"

	"h2tap/internal/htap"
	"h2tap/internal/workload"
)

// FreshnessExp is an extension quantifying §6.7's amortization claim: "when
// several analytics are executed on the same graph replica version e.g. as
// a batch … the replica needs to be updated only once, [which] amortizes
// the update propagation time across the analytics". For growing batch
// sizes, a fixed update stream lands between batches; the first analytics
// of each batch pays the propagation, the rest share the fresh replica.
// Reported: per-analytics effective latency (propagation + kernel, averaged
// over the batch).
func (c Config) FreshnessExp() *Table {
	c = c.norm()
	t := &Table{
		ID:    "freshness",
		Title: "Propagation amortization across analytics batches (SF1)",
		Columns: []string{"batch-size", "updates/batch", "propagation",
			"avg-kernel(sim)", "effective-latency/analytics"},
	}
	updatesPerBatch := c.queries(100_000)

	for _, batch := range []int{1, 2, 4, 8} {
		b := c.setup(1, captNone, false)
		eng, err := htap.NewEngine(b.store, htap.Config{Replica: htap.StaticCSR, Workers: c.Workers, Obs: c.Obs, OnCycle: c.OnCycle})
		if err != nil {
			panic(err)
		}
		gen := workload.NewGenerator(b.window(workload.HiDeg, windowFrac), b.ds.Posts, c.Seed)

		// Run several cycles and average: updates → batch of analytics.
		const cycles = 3
		var propTotal, kernelTotal time.Duration
		analyticsRun := 0
		for cyc := 0; cyc < cycles; cyc++ {
			b.runOps(gen.Mixed(updatesPerBatch))
			for i := 0; i < batch; i++ {
				kind := []htap.AnalyticsKind{htap.BFS, htap.PageRank, htap.SSSP, htap.WCC}[i%4]
				res, err := eng.RunAnalytics(kind, 0)
				if err != nil {
					panic(err)
				}
				propTotal += res.Propagation.Total.Total()
				kernelTotal += time.Duration(res.KernelSim)
				analyticsRun++
			}
		}
		effective := (propTotal + kernelTotal) / time.Duration(analyticsRun)
		t.AddRow(batch, updatesPerBatch,
			propTotal/cycles, kernelTotal/time.Duration(analyticsRun), effective)
	}
	t.Note("extension experiment (not in the paper): expected shape — effective per-analytics latency falls as batch size grows; only the first analytics of each batch pays the propagation (§6.7 point 2)")
	t.Note("%s", fmt.Sprintf("update stream: %d mixed queries between batches", updatesPerBatch))
	return t
}
