package h2tap

import (
	"errors"
	"fmt"
	"math"
	"strconv"

	"h2tap/internal/analytics"
	"h2tap/internal/htap"
	"h2tap/internal/obs"
	"h2tap/internal/shard"
	"h2tap/internal/wal"
)

// Sharded mode. Options.Shards > 1 partitions the engine into N independent
// domains — each with its own MVTO timestamp oracle, delta store, cost model
// and simulated GPU replica — coordinated by a two-phase commit protocol for
// cross-shard transactions and a watermark stitcher for cluster-wide
// analytics (DESIGN.md §5h). Shards == 0 or 1 is exactly the single-domain
// engine: none of the sharded machinery is constructed and every code path
// is byte-identical to previous releases.

// ClusterTx is a read-write transaction on a sharded database. It speaks
// global IDs; operations route to each node's home shard and commit is
// atomic across every touched shard.
type ClusterTx = shard.Tx

// StitchResult is the detailed outcome of a cross-shard analytics request.
type StitchResult = shard.StitchResult

// Sharded-mode usage errors.
var (
	// ErrNotSharded reports a sharded-only call on a single-domain database.
	ErrNotSharded = errors.New("h2tap: database opened without Shards > 1")
	// ErrSharded reports a single-domain-only call on a sharded database.
	ErrSharded = errors.New("h2tap: not supported with Shards > 1")
)

// Per-shard fault-domain surface (DESIGN.md §5j). A shard whose durable
// medium latches a persist failure is quarantined (ShardDown): writes
// touching it shed with a ShardDownError carrying the shard index, stitched
// analytics serve the healthy subgraph, and RecoverShard reopens it online.
var (
	// ErrShardDown matches any shed write via errors.Is; errors.As a
	// *ShardDownError extracts the shard index and cause.
	ErrShardDown = shard.ErrShardDown
	// ErrCoordinatorDown reports cross-shard commits refused because the
	// 2PC coordinator log latched a failure (single-shard traffic serves).
	ErrCoordinatorDown = shard.ErrCoordinatorDown
)

// ShardDownError is the structured shed error for writes touching a
// quarantined shard.
type ShardDownError = shard.ShardDownError

// openSharded is the Open path for Shards > 1.
func openSharded(opts Options) (*DB, error) {
	if opts.Undirected {
		return nil, fmt.Errorf("%w: Undirected", ErrSharded)
	}
	c, err := shard.Open(shard.Options{
		Shards:          opts.Shards,
		Replica:         opts.Replica,
		PersistDir:      opts.PersistDir,
		PersistPoolSize: opts.PersistPoolSize,
		SyncWAL:         opts.SyncWAL,
		GroupCommit:     opts.GroupCommit,
		FS:              opts.FS,
		EnableCostModel: opts.EnableCostModel,
		PageRankIters:   opts.PageRankIters,
		Damping:         opts.Damping,
		Retry:           opts.Retry,
		DeltaHighWater:  opts.DeltaHighWater,
	})
	if err != nil {
		return nil, err
	}
	db := &DB{opts: opts, cluster: c}
	db.wireShardObs()
	return db, nil
}

// wireShardObs registers the per-shard fault-domain metric families on the
// shared observer registry: health as a gauge (0 healthy, 1 degraded,
// 2 down) and completed online recoveries as a counter, one series per
// shard. Engine-level families are not wired per shard yet; the fault
// surface is what /healthz and alerting need first.
func (db *DB) wireShardObs() {
	o := db.opts.Observer
	if o == nil || db.cluster == nil {
		return
	}
	o.Reg.GaugeFunc("h2tap_wal_open_files",
		"Write-ahead log file handles currently open in this process.",
		func() float64 { return float64(wal.OpenFiles()) })
	for i := 0; i < db.cluster.Shards(); i++ {
		d := db.cluster.Domain(i)
		lbl := obs.L("shard", strconv.Itoa(i))
		o.Reg.GaugeFunc("h2tap_shard_health",
			"Shard fault-domain state: 0 healthy, 1 degraded, 2 down.",
			func() float64 { st, _ := d.Health(); return float64(st) }, lbl)
		o.Reg.CounterFunc("h2tap_shard_recoveries_total",
			"Completed online shard recoveries (RecoverShard).",
			func() float64 { return float64(d.Recoveries()) }, lbl)
	}
}

// ShardHealth is one shard's entry in the per-shard health breakdown.
type ShardHealth struct {
	Shard      int    `json:"shard"`
	State      string `json:"state"` // healthy | degraded | down
	Cause      string `json:"cause,omitempty"`
	Recoveries uint64 `json:"recoveries,omitempty"`
}

// ShardHealths reports every shard's fault-domain state (nil on a
// single-domain database).
func (db *DB) ShardHealths() []ShardHealth {
	if db.cluster == nil {
		return nil
	}
	out := make([]ShardHealth, db.cluster.Shards())
	for i := range out {
		d := db.cluster.Domain(i)
		st, cause := d.Health()
		out[i] = ShardHealth{Shard: i, State: st.String(), Recoveries: d.Recoveries()}
		if cause != nil {
			out[i].Cause = cause.Error()
		}
	}
	return out
}

// RecoverShard reopens a Down shard from its own WAL and checkpoint while
// the rest of the cluster keeps serving (sharded databases only). The
// underlying fault must be cleared first; see shard.Cluster.RecoverShard.
func (db *DB) RecoverShard(i int) error {
	if db.cluster == nil {
		return ErrNotSharded
	}
	return db.cluster.RecoverShard(i)
}

// RecoverCoordinator reopens a latched 2PC coordinator decision log,
// restoring cross-shard commits (sharded databases only; no-op while the
// coordinator is healthy).
func (db *DB) RecoverCoordinator() error {
	if db.cluster == nil {
		return ErrNotSharded
	}
	return db.cluster.RecoverCoordinator()
}

// Cluster exposes the shard cluster (nil on a single-domain database).
func (db *DB) Cluster() *shard.Cluster { return db.cluster }

// BeginSharded starts a cluster transaction on a sharded database.
func (db *DB) BeginSharded() (*ClusterTx, error) {
	if db.cluster == nil {
		return nil, ErrNotSharded
	}
	return db.cluster.Begin(), nil
}

// RunAnalyticsStitched executes one cross-shard analytics request and
// returns the stitched result keyed by global ID (sharded databases only).
func (db *DB) RunAnalyticsStitched(kind AnalyticsKind, src uint64) (*StitchResult, error) {
	return db.RunAnalyticsStitchedTraced(kind, src, nil)
}

// RunAnalyticsStitchedTraced is RunAnalyticsStitched carrying a request
// trace: the stitch barrier and propagate-on-demand waits are recorded as
// spans on rq. rq may be nil.
func (db *DB) RunAnalyticsStitchedTraced(kind AnalyticsKind, src uint64, rq *obs.Req) (*StitchResult, error) {
	if db.cluster == nil {
		return nil, ErrNotSharded
	}
	return db.cluster.RunAnalyticsTraced(kind, src, rq)
}

// shardedRunAnalytics adapts a stitched result to the single-domain Result
// shape: slices indexed by global node ID, with neutral values (unreachable
// / +Inf / zero) in the slots the composite does not contain.
func (db *DB) shardedRunAnalytics(kind AnalyticsKind, src NodeID) (*Result, error) {
	st, err := db.cluster.RunAnalytics(kind, uint64(src))
	if err != nil {
		return nil, err
	}
	res := &Result{
		Kind:      st.Kind,
		KernelSim: st.KernelSim,
		HostWall:  st.HostWall,
		Work:      st.Work,
	}
	n := uint64(0)
	if len(st.GlobalIDs) > 0 {
		n = st.GlobalIDs[len(st.GlobalIDs)-1] + 1
	}
	switch {
	case st.Levels != nil:
		res.Levels = make([]int32, n)
		for i := range res.Levels {
			res.Levels[i] = analytics.Unreachable
		}
		for i, g := range st.GlobalIDs {
			res.Levels[g] = st.Levels[i]
		}
	case st.Dists != nil:
		res.Dists = make([]float64, n)
		for i := range res.Dists {
			res.Dists[i] = math.Inf(1)
		}
		for i, g := range st.GlobalIDs {
			res.Dists[g] = st.Dists[i]
		}
	case st.Ranks != nil:
		res.Ranks = make([]float64, n)
		for i, g := range st.GlobalIDs {
			res.Ranks[g] = st.Ranks[i]
		}
	case st.Comp != nil:
		res.Comp = make([]uint64, n)
		for i := range res.Comp {
			res.Comp[i] = uint64(i)
		}
		for i, g := range st.GlobalIDs {
			// Component labels are composite indices; translate back to the
			// global ID of the labeling vertex.
			res.Comp[g] = st.GlobalIDs[st.Comp[i]]
		}
	case st.Coef != nil:
		res.Coef = make([]float64, n)
		for i, g := range st.GlobalIDs {
			res.Coef[g] = st.Coef[i]
		}
	}
	return res, nil
}

// shardedPropagate runs one propagation cycle on every shard and folds the
// per-shard reports into one aggregate (records and walls sum; the simulated
// device times take the slowest shard, matching concurrent execution).
func (db *DB) shardedPropagate() (*PropagationReport, error) {
	reports, err := db.cluster.PropagateAll()
	agg := &PropagationReport{}
	for _, rep := range reports {
		if rep == nil {
			continue
		}
		agg.Triggered = agg.Triggered || rep.Triggered
		agg.Rebuild = agg.Rebuild || rep.Rebuild
		if rep.TS > agg.TS {
			agg.TS = rep.TS
		}
		agg.Records += rep.Records
		agg.Deltas += rep.Deltas
		agg.ScanWall += rep.ScanWall
		agg.MergeWall += rep.MergeWall
		agg.PersistWall += rep.PersistWall
		if rep.TransferSim > agg.TransferSim {
			agg.TransferSim = rep.TransferSim
		}
		if rep.TransferBusSim > agg.TransferBusSim {
			agg.TransferBusSim = rep.TransferBusSim
		}
		if rep.IngestSim > agg.IngestSim {
			agg.IngestSim = rep.IngestSim
		}
		agg.Attempts += rep.Attempts
		agg.RetryWall += rep.RetryWall
	}
	return agg, err
}

// shardedStats aggregates per-shard counters and fills the sharded-only
// fields. The per-shard stores count ghost stand-ins as live rows; here
// LiveNodes is kept logical (stand-ins subtracted and reported as
// GhostNodes), so the number means the same thing sharded and not.
func (db *DB) shardedStats() Stats {
	c := db.cluster
	st := Stats{
		Shards:          c.Shards(),
		ShardWatermarks: c.Watermarks(),
		StitchEpoch:     c.Epoch(),
		CrossTxLive:     c.CrossTxLive(),
		GhostNodes:      c.GhostNodes(),
	}
	for i := 0; i < c.Shards(); i++ {
		d := c.Domain(i)
		st.LiveNodes += d.Store().LiveNodes()
		st.LiveRels += d.Store().LiveRels()
		st.DeltaRecords += d.DS().Records()
		st.DeltaBytes += d.DS().ArrayBytes()
		st.DeltaMode = st.DeltaMode || d.DS().DeltaMode()
		if e := d.Engine(); e != nil {
			if ts := uint64(e.ReplicaTS()); ts > st.ReplicaTS {
				st.ReplicaTS = ts
			}
			st.Propagations += e.Propagations()
			st.Rebuilds += e.Rebuilds()
			st.DeviceMemUsed += e.Device().MemUsed()
			if t := e.Device().SimTime(); t > st.DeviceSimTime {
				st.DeviceSimTime = t
			}
			if h, _ := e.Health(); h == htap.Degraded {
				st.Health = htap.Degraded
			}
			st.Retries += e.Retries()
			st.FallbackRebuilds += e.FallbackRebuilds()
			st.DegradedCycles += e.DegradedCycles()
		}
	}
	st.LiveNodes -= st.GhostNodes
	return st
}

// shardedHealth reports Degraded if any shard is Down or its engine is
// degraded. The facade Health enum has two states; a quarantined shard maps
// to Degraded (the cluster still serves) with the structured ShardDownError
// as the cause — ShardHealths gives the full per-shard breakdown.
func (db *DB) shardedHealth() (Health, error) {
	for i := 0; i < db.cluster.Shards(); i++ {
		d := db.cluster.Domain(i)
		if st, cause := d.Health(); st == shard.ShardDown {
			return Degraded, &shard.ShardDownError{Shard: i, Cause: cause}
		}
		if e := d.Engine(); e != nil {
			if h, err := e.Health(); h == htap.Degraded {
				return h, fmt.Errorf("shard %d: %w", i, err)
			}
		}
	}
	if err := db.cluster.CoordErr(); err != nil {
		return Degraded, err
	}
	return Healthy, nil
}
