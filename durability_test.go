package h2tap

import (
	"os"
	"path/filepath"
	"sync"
	"testing"

	"h2tap/internal/faultinject"
	"h2tap/internal/vfs"
)

// TestOpenRecoversFromPartialPoolInit simulates a crash between the two
// pool creations: delta.pool exists (possibly garbage), csr.pool and the
// pools.ok sentinel do not. Open must discard the partial state and
// initialize cleanly.
func TestOpenRecoversFromPartialPoolInit(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "delta.pool"), []byte("partial garbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	db, err := Open(Options{PersistDir: dir, PersistPoolSize: 8 << 20})
	if err != nil {
		t.Fatalf("open over partial pool init: %v", err)
	}
	tx := db.Begin()
	if _, err := tx.AddNode("P", nil); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	// The sentinel exists now, so this reopen takes the recovery path.
	db2, err := Open(Options{PersistDir: dir})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer db2.Close()
	if got := db2.Store().LiveNodes(); got != 1 {
		t.Fatalf("recovered %d nodes, want 1", got)
	}
}

// TestOpenCrashSweepDuringInit crashes Open at every one of its persist
// operations in turn — including between the two pool creations and around
// the sentinel — and requires a plain reopen of the same directory to come
// up working every time.
func TestOpenCrashSweepDuringInit(t *testing.T) {
	cfs := faultinject.New(vfs.OS())
	db, err := Open(Options{PersistDir: t.TempDir(), PersistPoolSize: 8 << 20, FS: cfs})
	if err != nil {
		t.Fatal(err)
	}
	n := cfs.Ops()
	db.Close()
	if n < 5 {
		t.Fatalf("init has only %d persist ops, counting is broken", n)
	}

	for p := int64(1); p <= n; p++ {
		dir := t.TempDir()
		ffs := faultinject.New(vfs.OS())
		ffs.CrashAt(p, faultinject.TearHalf)
		if db, err := Open(Options{PersistDir: dir, PersistPoolSize: 8 << 20, FS: ffs}); err == nil {
			db.Close()
		}
		db2, err := Open(Options{PersistDir: dir, PersistPoolSize: 8 << 20})
		if err != nil {
			t.Fatalf("crash at init op %d/%d: reopen failed: %v", p, n, err)
		}
		tx := db2.Begin()
		if _, err := tx.AddNode("P", nil); err != nil {
			t.Fatalf("crash at init op %d/%d: %v", p, n, err)
		}
		if err := tx.Commit(); err != nil {
			t.Fatalf("crash at init op %d/%d: post-recovery commit: %v", p, n, err)
		}
		if err := db2.Close(); err != nil {
			t.Fatalf("crash at init op %d/%d: close: %v", p, n, err)
		}
	}
}

func TestDoubleClose(t *testing.T) {
	db, err := Open(Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	if err := db.Close(); err != nil {
		t.Fatalf("second close of volatile db: %v", err)
	}

	dir := t.TempDir()
	db2, err := Open(Options{PersistDir: dir, PersistPoolSize: 8 << 20})
	if err != nil {
		t.Fatal(err)
	}
	tx := db2.Begin()
	tx.AddNode("P", nil)
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := db2.Close(); err != nil {
		t.Fatal(err)
	}
	if err := db2.Close(); err != nil {
		t.Fatalf("second close of persistent db: %v", err)
	}
}

// TestPersistentDeltaFailureStopsCommits drives a PMem write failure into
// the delta store's mirror path and checks the facade-level contract: the
// failure latches, later commits are refused before they reach the WAL,
// propagation refuses to run, and Close surfaces the error.
func TestPersistentDeltaFailureStopsCommits(t *testing.T) {
	dir := t.TempDir()
	ffs := faultinject.New(vfs.OS())
	db, err := Open(Options{PersistDir: dir, PersistPoolSize: 8 << 20, FS: ffs})
	if err != nil {
		t.Fatal(err)
	}
	tx := db.Begin()
	a, _ := tx.AddNode("P", nil)
	b, _ := tx.AddNode("P", nil)
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}

	// Next commit: op+1 is its WAL append, op+2 the first delta-mirror
	// write. Fail the mirror.
	ffs.FailAt(ffs.Ops() + 2)
	tx2 := db.Begin()
	tx2.AddRel(a, b, "knows", 1)
	_ = tx2.Commit() // capture failures latch rather than fail this commit
	if db.DeltaStore().PersistErr() == nil {
		t.Fatal("mirror failure not latched")
	}

	tx3 := db.Begin()
	tx3.AddNode("P", nil)
	if err := tx3.Commit(); err == nil {
		t.Fatal("commit accepted after latched persist failure")
	}
	if _, err := db.Propagate(); err == nil {
		t.Fatal("propagation ran after latched persist failure")
	}
	if err := db.Close(); err == nil {
		t.Fatal("close did not surface the latched persist failure")
	}
	if err := db.Close(); err == nil {
		t.Fatal("second close lost the latched persist failure")
	}
}

// TestCheckpointWithConcurrentCommits checkpoints repeatedly while four
// goroutines commit — no maintenance window — and checks no commit is lost
// across recovery.
func TestCheckpointWithConcurrentCommits(t *testing.T) {
	dir := t.TempDir()
	db, err := Open(Options{PersistDir: dir, PersistPoolSize: 32 << 20})
	if err != nil {
		t.Fatal(err)
	}
	const workers, perWorker = 4, 25
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				tx := db.Begin()
				if _, err := tx.AddNode("W", nil); err != nil {
					t.Error(err)
					return
				}
				if err := tx.Commit(); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 5; i++ {
			if err := db.Checkpoint(); err != nil {
				t.Errorf("checkpoint %d: %v", i, err)
				return
			}
		}
	}()
	wg.Wait()
	<-done
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	db2, err := Open(Options{PersistDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	if got := db2.Store().LiveNodes(); got != workers*perWorker {
		t.Fatalf("recovered %d nodes, want %d", got, workers*perWorker)
	}
}
