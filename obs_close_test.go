package h2tap

import (
	"fmt"
	"io"
	"net/http"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestCloseWhileObsServing is the regression test for DB.Close racing a
// concurrently serving ObsServer: scrapers hammer /metrics and /healthz in
// a loop while Close runs. Close must finish within its bounded shutdown
// timeout, never panic, and leave the listener actually closed.
func TestCloseWhileObsServing(t *testing.T) {
	obs := NewObserver()
	db, _ := seedDB(t, Options{Observer: obs}, 4)
	if _, err := db.RunAnalytics(BFS, 0); err != nil {
		t.Fatal(err)
	}
	srv, err := db.ServeObs("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	base := "http://" + srv.Addr()

	var stop atomic.Bool
	var served atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			hc := &http.Client{Timeout: 2 * time.Second}
			for !stop.Load() {
				for _, path := range []string{"/metrics", "/healthz"} {
					resp, err := hc.Get(base + path)
					if err != nil {
						return // listener closed under us: expected once Close starts
					}
					io.Copy(io.Discard, resp.Body) //nolint:errcheck
					resp.Body.Close()
					served.Add(1)
				}
			}
		}()
	}

	// Let the scrapers get going, then close the database out from under
	// them. Close holds the obs server's bounded graceful shutdown, so it
	// must return comfortably within that bound plus slack.
	deadlineErr := make(chan error, 1)
	for served.Load() == 0 {
		time.Sleep(time.Millisecond)
	}
	go func() {
		start := time.Now()
		err := db.Close()
		if d := time.Since(start); d > 5*time.Second {
			deadlineErr <- fmt.Errorf("Close took %v; want bounded shutdown", d)
			return
		}
		deadlineErr <- err
	}()
	select {
	case err := <-deadlineErr:
		if err != nil {
			t.Fatalf("Close while serving: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("Close wedged behind in-flight scrapes")
	}
	stop.Store(true)
	wg.Wait()

	// The listener is really gone.
	hc := &http.Client{Timeout: time.Second}
	if resp, err := hc.Get(base + "/metrics"); err == nil {
		resp.Body.Close()
		t.Fatal("obs listener still serving after Close")
	}
	if served.Load() == 0 {
		t.Fatal("no scrape completed before Close")
	}
	// Idempotence still holds with the graceful path.
	if err := db.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
}
