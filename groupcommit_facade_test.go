package h2tap

import (
	"bufio"
	"bytes"
	"strconv"
	"strings"
	"sync"
	"testing"
)

// metricValue reads one un-labeled metric out of the observer's Prometheus
// exposition.
func metricValue(t *testing.T, o *Observer, name string) float64 {
	t.Helper()
	var buf bytes.Buffer
	o.Reg.WritePrometheus(&buf)
	sc := bufio.NewScanner(&buf)
	for sc.Scan() {
		line := sc.Text()
		if !strings.HasPrefix(line, name+" ") {
			continue
		}
		v, err := strconv.ParseFloat(strings.TrimPrefix(line, name+" "), 64)
		if err != nil {
			t.Fatalf("parse %s: %v", line, err)
		}
		return v
	}
	t.Fatalf("metric %s not exposed", name)
	return 0
}

// TestSyncWALGroupCommitRoundTrip drives the facade end to end: SyncWAL and
// GroupCommit set in Options must reach the WAL (observed through the wired
// metrics — fsyncs happen, batches form under concurrency), survive a
// close/reopen, and SyncWAL=false must suppress commit-path fsyncs.
func TestSyncWALGroupCommitRoundTrip(t *testing.T) {
	dir := t.TempDir()
	o := NewObserver()
	db, err := Open(Options{
		PersistDir:      dir,
		PersistPoolSize: 8 << 20,
		SyncWAL:         true,
		GroupCommit:     GroupCommit{MaxBatch: 8},
		Observer:        o,
	})
	if err != nil {
		t.Fatal(err)
	}
	const workers, perWorker = 4, 10
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				tx := db.Begin()
				if _, err := tx.AddNode("P", nil); err != nil {
					t.Error(err)
					return
				}
				if err := tx.Commit(); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()
	appends := metricValue(t, o, "h2tap_wal_appends_total")
	syncs := metricValue(t, o, "h2tap_wal_fsyncs_total")
	batches := metricValue(t, o, "h2tap_wal_batches_total")
	maxBatch := metricValue(t, o, "h2tap_wal_batch_max_records")
	if appends != workers*perWorker {
		t.Fatalf("appends = %v, want %d", appends, workers*perWorker)
	}
	if syncs == 0 {
		t.Fatal("SyncWAL=true produced no fsyncs")
	}
	if syncs != batches {
		t.Fatalf("syncs = %v, batches = %v: want one fsync per batch", syncs, batches)
	}
	if maxBatch < 1 || maxBatch > 8 {
		t.Fatalf("max batch = %v, want within [1, 8] (MaxBatch option ignored?)", maxBatch)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen without SyncWAL: recovery sees every acked commit and the
	// commit path stops fsyncing.
	o2 := NewObserver()
	db2, err := Open(Options{PersistDir: dir, SyncWAL: false, Observer: o2})
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	if got := db2.Store().LiveNodes(); got != workers*perWorker {
		t.Fatalf("recovered %d nodes, want %d", got, workers*perWorker)
	}
	tx := db2.Begin()
	if _, err := tx.AddNode("P", nil); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	if syncs := metricValue(t, o2, "h2tap_wal_fsyncs_total"); syncs != 0 {
		t.Fatalf("SyncWAL=false still fsynced %v times on the commit path", syncs)
	}
	if appends := metricValue(t, o2, "h2tap_wal_appends_total"); appends != 1 {
		t.Fatalf("appends after reopen = %v, want 1", appends)
	}
}
