// Package h2tap is a heterogeneous hybrid transactional/analytical graph
// processing (H2TAP) engine: ACID transactions run on a CPU-resident main
// property graph under MVTO concurrency control, while graph analytics
// (BFS, PageRank, SSSP, WCC) run on a GPU-resident structural replica kept
// fresh through DELTA_FE — a fast and efficient append-only graph delta
// store with a CSR-like layout.
//
// It is a from-scratch reproduction of "Fast and Efficient Update Handling
// for Graph H2TAP" (Jibril, Al-Sayeh, Baumstark, Sattler — EDBT 2023). The
// GPU and persistent-memory hardware of the paper's testbed are simulated
// with calibrated cost models; see DESIGN.md for the substitution notes and
// EXPERIMENTS.md for the reproduced evaluation.
//
// Quick start:
//
//	db, err := h2tap.Open(h2tap.Options{})
//	...
//	tx := db.Begin()
//	alice, _ := tx.AddNode("Person", map[string]h2tap.Value{"name": h2tap.Str("alice")})
//	bob, _ := tx.AddNode("Person", map[string]h2tap.Value{"name": h2tap.Str("bob")})
//	tx.AddRel(alice, bob, "knows", 1.0)
//	tx.Commit()
//
//	res, _ := db.RunAnalytics(h2tap.PageRank, 0) // propagates deltas, runs on the replica
package h2tap

import (
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"h2tap/internal/costmodel"
	"h2tap/internal/deltastore"
	"h2tap/internal/gpu"
	"h2tap/internal/graph"
	"h2tap/internal/htap"
	"h2tap/internal/mvto"
	"h2tap/internal/obs"
	"h2tap/internal/pmem"
	"h2tap/internal/shard"
	"h2tap/internal/sim"
	"h2tap/internal/vfs"
	"h2tap/internal/wal"
)

// FS is the injectable filesystem surface the durability layers run on.
// Tests (notably internal/crashtest) substitute a fault-injecting one so
// the production persistence paths are what gets crashed.
type FS = vfs.FS

// Re-exported types: the facade keeps user code inside this package.
type (
	// Tx is a read-write graph transaction.
	Tx = graph.Tx
	// Value is a property value.
	Value = graph.Value
	// NodeID identifies a node.
	NodeID = graph.NodeID
	// RelID identifies a relationship.
	RelID = graph.RelID
	// NodeSpec describes a node for bulk loading.
	NodeSpec = graph.NodeSpec
	// EdgeSpec describes a relationship for bulk loading.
	EdgeSpec = graph.EdgeSpec
	// Result is an analytics execution with its latency breakdown.
	Result = htap.Result
	// Ticket is a queued analytics request.
	Ticket = htap.Ticket
	// AnalyticsKind identifies a graph algorithm.
	AnalyticsKind = htap.AnalyticsKind
	// ReplicaKind selects the GPU-side replica structure.
	ReplicaKind = htap.ReplicaKind
	// PropagationReport describes one update-propagation cycle.
	PropagationReport = htap.PropagationReport
	// Health is the analytics engine's availability state.
	Health = htap.Health
	// Staleness bounds how far the replica lags the main graph.
	Staleness = htap.Staleness
	// RetryPolicy bounds replica-apply retries within a propagation cycle.
	RetryPolicy = htap.RetryPolicy
	// ScrubReport is the outcome of a replica integrity scrub.
	ScrubReport = htap.ScrubReport
	// Observer is the observability bundle: metrics registry, cycle
	// tracer, cost-model drift tracker. Create one with NewObserver, pass
	// it in Options.Observer, expose it with DB.ServeObs.
	Observer = obs.Observer
	// ObsServer is a running observability HTTP listener.
	ObsServer = obs.Server
	// GroupCommit tunes WAL group commit: how many commits may share one
	// write+fsync and how long a batch leader may linger for joiners.
	GroupCommit = wal.GroupCommit
)

// NewObserver returns an Observer with every metric family pre-registered.
func NewObserver() *Observer { return obs.New() }

// Health states.
const (
	// Healthy: the last propagation cycle succeeded.
	Healthy = htap.Healthy
	// Degraded: propagation is failing; analytics serve the last-good
	// replica with an explicit staleness bound.
	Degraded = htap.Degraded
)

// Property value constructors.
var (
	Int   = graph.Int
	Float = graph.Float
	Str   = graph.Str
	Bool  = graph.Bool
)

// Analytics kinds.
const (
	BFS      = htap.BFS
	PageRank = htap.PageRank
	SSSP     = htap.SSSP
	WCC      = htap.WCC
	CDLP     = htap.CDLP
	LCC      = htap.LCC
)

// Replica kinds.
const (
	// StaticCSR is the static replica path: delta merge into a CPU CSR
	// copy, full CSR transfer to the device (§5.4).
	StaticCSR = htap.StaticCSR
	// DynamicHash is the dynamic replica path: coalesced delta transfer,
	// batched ingestion into a hash-table-per-vertex structure (§5.4).
	DynamicHash = htap.DynamicHash
)

// Options configures Open.
type Options struct {
	// Shards partitions the engine into N independent MVTO/delta domains
	// with two-phase cross-shard commits and stitched cross-shard analytics
	// (DESIGN.md §5h). Zero or one selects the single-domain engine —
	// identical to previous releases. Sharded databases use BeginSharded
	// (global node IDs) instead of Begin, and do not support Undirected,
	// Observer, Submit, BulkLoad or Scrub.
	Shards int
	// Replica selects the GPU-side structure (default StaticCSR).
	Replica ReplicaKind
	// Undirected switches the main graph to undirected mode: relationships
	// have no orientation, appear in both endpoints' adjacency, and commit
	// two deltas each (§5.1).
	Undirected bool
	// PersistDir, when non-empty, stores the delta store and the recovery
	// CSR copy in simulated persistent memory under this directory (§6.5).
	PersistDir string
	// PersistPoolSize bounds each persistent pool (default 1 GiB).
	PersistPoolSize int64
	// EnableCostModel calibrates the §6.4 cost model when the analytics
	// engine starts and lets the delta store switch to rebuild mode past
	// the fitted threshold.
	EnableCostModel bool
	// PageRankIters and Damping parameterize PageRank (defaults 10, 0.85).
	PageRankIters int
	Damping       float64
	// Device overrides the simulated GPU (default: an A100-like device).
	Device *gpu.Device
	// SyncWAL fsyncs the write-ahead log after every commit (durability
	// over throughput); without it the OS decides when bytes hit stable
	// storage.
	SyncWAL bool
	// GroupCommit tunes the WAL's group commit (zero values select the
	// defaults: batches up to 64 commits, no artificial delay). It applies
	// to every log the database writes — the main-graph WAL, per-shard
	// WALs, and the cross-shard coordinator decision log.
	GroupCommit GroupCommit
	// FS overrides the filesystem the WAL and persistent pools use (nil
	// selects the real one). The crash-fault harness injects one here.
	FS FS
	// Retry bounds device-fault retries within a propagation cycle
	// (zero fields select the defaults: 3 attempts, 1ms backoff doubling
	// to 50ms).
	Retry RetryPolicy
	// DeltaHighWater, when non-zero, is the delta-store record count past
	// which an emergency propagation is kicked off; if the engine is
	// already Degraded (propagation failing), commits are rejected instead
	// so a wedged device cannot hide unbounded delta-store growth.
	DeltaHighWater uint64
	// Observer, when set, wires the database into the observability layer:
	// commit latency, WAL append/fsync counters, delta-store depth, every
	// propagation-cycle metric, health and staleness gauges, cycle traces,
	// cost-model drift. Serve it over HTTP with DB.ServeObs. Nil (the
	// default) keeps all hot paths at a single nil check.
	Observer *Observer
	// SlowCycleThreshold, when > 0, logs a single-line phase breakdown of
	// every propagation cycle whose critical-path total meets it.
	SlowCycleThreshold time.Duration
	// OnPropagation, when set, receives every finished propagation report
	// (the bench uses it to emit per-cycle JSON lines). Called on the
	// propagating goroutine — keep it cheap.
	OnPropagation func(*PropagationReport)
}

// DB is an open H2TAP database.
type DB struct {
	opts  Options
	store *graph.Store
	ds    *deltastore.Store

	// cluster is set instead of the fields above when Options.Shards > 1.
	cluster *shard.Cluster

	deltaPool *pmem.Pool
	csrPool   *pmem.Pool
	wal       *wal.Log

	engineOnce sync.Once
	engine     *htap.Engine
	engineRef  atomic.Pointer[htap.Engine] // for commit-path guards racing StartEngine
	engineErr  error
	queue      *htap.Queue

	obsMu   sync.Mutex
	obsSrvs []*obs.Server

	closeOnce sync.Once
	closeErr  error
}

// poolsSentinel marks a fully initialized pool pair. It is created (and its
// directory fsynced) only after both pools and the delta store root exist,
// so a crash anywhere inside initialization — including between the two
// pool creations — is detected on the next Open and the partial pools are
// recreated rather than half-recovered.
const poolsSentinel = "pools.ok"

// deltaGuard aborts commits once the persistent delta store has hit a PMem
// write failure: continuing would let the volatile store diverge from what
// a recovery could rebuild. It is registered before the WAL logger, so a
// broken persistence layer stops commits before they reach the log.
type deltaGuard struct{ ds *deltastore.Store }

func (g deltaGuard) LogCommit(mvto.TS, []graph.LoggedOp) error {
	if err := g.ds.PersistErr(); err != nil {
		return fmt.Errorf("h2tap: persistent delta store failed: %w", err)
	}
	return nil
}

// ErrBackpressure rejects a commit because the analytics engine is Degraded
// and the delta store has grown past its high-water mark: propagation
// cannot drain the store, so admitting more updates would grow it without
// bound. Commits succeed again once a propagation cycle recovers the
// engine.
//
// It is a sentinel: Tx.Commit wraps it, so match with
// errors.Is(err, h2tap.ErrBackpressure). The network service layer
// (internal/server) maps it onto HTTP 503 + Retry-After — the system-wide
// rung of its shedding ladder, distinct from the per-client 429s of the
// rate limiter and admission semaphore (see DESIGN.md §5g).
var ErrBackpressure = htap.ErrBackpressure

// backpressureGuard is the committer-side half of the high-water backstop.
// It reads the engine through the atomic ref because commits can race
// StartEngine; before the engine exists there is nothing to throttle.
type backpressureGuard struct{ db *DB }

func (g backpressureGuard) LogCommit(mvto.TS, []graph.LoggedOp) error {
	if e := g.db.engineRef.Load(); e != nil && e.Backpressure() {
		return ErrBackpressure
	}
	return nil
}

// Open creates an empty database. Load data with Begin/Commit transactions
// or BulkLoad, then run analytics; the replica engine starts lazily on the
// first analytics call (or explicitly via StartEngine).
//
// With PersistDir set, Open is also the recovery path (§6.5): the main
// graph is replayed from its write-ahead log (torn tails trimmed, interior
// corruption rejected with wal.ErrCorrupt), the persistent delta store
// resumes at its durable prefix, and the first replica build consumes
// whatever that prefix already covers.
func Open(opts Options) (_ *DB, err error) {
	if opts.Shards > 1 {
		return openSharded(opts)
	}
	db := &DB{opts: opts}
	if opts.Undirected {
		db.store = graph.NewUndirectedStore()
	} else {
		db.store = graph.NewStore()
	}
	if opts.PersistDir == "" {
		db.ds = deltastore.NewVolatile()
		if opts.DeltaHighWater > 0 {
			db.store.AddOpLogger(backpressureGuard{db})
		}
		db.store.AddCapturer(db.ds)
		return db, nil
	}

	// A failed Open must not leak the handles it already acquired: close
	// pools and log before reporting the error.
	defer func() {
		if err == nil {
			return
		}
		if db.wal != nil {
			db.wal.Close()
		}
		for _, p := range []*pmem.Pool{db.deltaPool, db.csrPool} {
			if p != nil {
				p.Close()
			}
		}
	}()

	fsys := opts.FS
	if fsys == nil {
		fsys = vfs.OS()
	}
	size := opts.PersistPoolSize
	if size == 0 {
		size = 1 << 30
	}
	if err := fsys.MkdirAll(opts.PersistDir, 0o755); err != nil {
		return nil, fmt.Errorf("h2tap: persist dir: %w", err)
	}
	deltaPath := filepath.Join(opts.PersistDir, "delta.pool")
	csrPath := filepath.Join(opts.PersistDir, "csr.pool")
	walPath := filepath.Join(opts.PersistDir, "graph.wal")
	sentinelPath := filepath.Join(opts.PersistDir, poolsSentinel)

	// Delta-store pools first: a fresh pair is only trusted once the
	// sentinel exists, so partially created pools from a mid-init crash are
	// wiped and rebuilt instead of opened.
	if _, serr := fsys.Stat(sentinelPath); serr == nil {
		// Existing pools: recover (§6.5 instant recovery). The delta store
		// resumes with its durable records; the engine's initial replica
		// build consumes whatever the replica already covers.
		if db.deltaPool, err = pmem.OpenOn(fsys, deltaPath, sim.DefaultPMem()); err != nil {
			return nil, err
		}
		if db.csrPool, err = pmem.OpenOn(fsys, csrPath, sim.DefaultPMem()); err != nil {
			return nil, err
		}
		if db.ds, err = deltastore.OpenPersistent(db.deltaPool); err != nil {
			return nil, err
		}
	} else {
		for _, stale := range []string{deltaPath, csrPath} {
			if _, err := fsys.Stat(stale); err == nil {
				if err := fsys.Remove(stale); err != nil {
					return nil, fmt.Errorf("h2tap: remove partial pool: %w", err)
				}
			}
		}
		if db.deltaPool, err = pmem.CreateOn(fsys, deltaPath, size, sim.DefaultPMem()); err != nil {
			return nil, err
		}
		if db.csrPool, err = pmem.CreateOn(fsys, csrPath, size, sim.DefaultPMem()); err != nil {
			return nil, err
		}
		if db.ds, err = deltastore.NewPersistent(db.deltaPool); err != nil {
			return nil, err
		}
		if err := writeSentinel(fsys, sentinelPath, opts.PersistDir); err != nil {
			return nil, err
		}
	}

	// A checkpoint that crashed before its rename leaves graph.wal.tmp
	// behind. The live log is still intact (the rename is the commit point),
	// so the leftover is garbage: remove it so no later checkpoint or
	// inspection can mistake its stale records for durable state.
	walTmp := walPath + ".tmp"
	if _, serr := fsys.Stat(walTmp); serr == nil {
		if err := fsys.Remove(walTmp); err != nil {
			return nil, fmt.Errorf("h2tap: remove stale checkpoint temp: %w", err)
		}
	}

	if _, err := fsys.Stat(walPath); err == nil {
		// Recover the main graph from its write-ahead log before anything
		// else touches the store, trimming any torn tail so appends resume
		// at the last valid record boundary.
		st, err := wal.ReplayFS(fsys, walPath, db.store)
		if err != nil {
			return nil, fmt.Errorf("h2tap: main graph recovery: %w", err)
		}
		if st.TornTail {
			if err := wal.Trim(fsys, walPath, st.ValidLen); err != nil {
				return nil, fmt.Errorf("h2tap: main graph recovery: %w", err)
			}
		}
	}
	if db.wal, err = wal.Open(walPath, wal.Options{
		SyncEveryCommit: opts.SyncWAL,
		GroupCommit:     opts.GroupCommit,
		FS:              fsys,
	}); err != nil {
		return nil, err
	}
	db.store.AddOpLogger(deltaGuard{db.ds})
	if opts.DeltaHighWater > 0 {
		db.store.AddOpLogger(backpressureGuard{db})
	}
	db.store.AddOpLogger(db.wal)
	db.store.AddCapturer(db.ds)
	db.wireWALObs()
	return db, nil
}

// wireWALObs registers the WAL's pull-based counters with the observer.
// The engine wires everything else when it starts; the WAL belongs to the
// facade, so its exposition is wired here.
func (db *DB) wireWALObs() {
	o := db.opts.Observer
	if o == nil || db.wal == nil {
		return
	}
	w := db.wal
	o.Reg.CounterFunc("h2tap_wal_appends_total",
		"Commit records successfully appended to the write-ahead log.",
		func() float64 { return float64(w.Stats().Appends) })
	o.Reg.CounterFunc("h2tap_wal_append_bytes_total",
		"Bytes written by successful WAL appends (header + payload).",
		func() float64 { return float64(w.Stats().AppendBytes) })
	o.Reg.CounterFunc("h2tap_wal_fsyncs_total",
		"Fsyncs issued on the WAL append path (SyncWAL mode).",
		func() float64 { return float64(w.Stats().Syncs) })
	o.Reg.CounterFunc("h2tap_wal_batches_total",
		"Group-commit batches flushed (one write, at most one fsync each).",
		func() float64 { return float64(w.Stats().Batches) })
	o.Reg.GaugeFunc("h2tap_wal_batch_max_records",
		"Largest number of commit records that shared one flush.",
		func() float64 { return float64(w.Stats().MaxBatch) })
	o.Reg.CounterFunc("h2tap_wal_flush_seconds_total",
		"Wall time spent inside WAL batch flushes (write + fsync).",
		func() float64 { return float64(w.Stats().FlushNanos) / 1e9 })
	o.Reg.CounterFunc("h2tap_wal_wait_seconds_total",
		"Committer wall time from group-commit enqueue to batch ack.",
		func() float64 { return float64(w.Stats().WaitNanosSum) / 1e9 })
	o.Reg.GaugeFunc("h2tap_wal_wait_min_seconds",
		"Fastest observed enqueue-to-ack wait of a WAL append.",
		func() float64 { return float64(w.Stats().WaitNanosMin) / 1e9 })
	o.Reg.GaugeFunc("h2tap_wal_wait_max_seconds",
		"Slowest observed enqueue-to-ack wait of a WAL append.",
		func() float64 { return float64(w.Stats().WaitNanosMax) / 1e9 })
	o.Reg.GaugeFunc("h2tap_wal_open_files",
		"Write-ahead log file handles currently open in this process.",
		func() float64 { return float64(wal.OpenFiles()) })
}

// ServeObs starts the observability HTTP listener (e.g. "127.0.0.1:0" for
// an ephemeral port) serving /metrics, /healthz, /debug/trace and
// /debug/pprof from Options.Observer. The listener is closed by Close.
func (db *DB) ServeObs(addr string) (*ObsServer, error) {
	if db.opts.Observer == nil {
		return nil, fmt.Errorf("h2tap: ServeObs requires Options.Observer")
	}
	srv, err := obs.Serve(addr, db.opts.Observer)
	if err != nil {
		return nil, err
	}
	db.obsMu.Lock()
	db.obsSrvs = append(db.obsSrvs, srv)
	db.obsMu.Unlock()
	return srv, nil
}

// writeSentinel durably creates the pools-initialized marker.
func writeSentinel(fsys vfs.FS, path, dir string) error {
	f, err := fsys.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("h2tap: pool sentinel: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return fmt.Errorf("h2tap: pool sentinel sync: %w", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("h2tap: pool sentinel close: %w", err)
	}
	if err := fsys.SyncDir(dir); err != nil {
		return fmt.Errorf("h2tap: pool sentinel dir sync: %w", err)
	}
	return nil
}

// Begin starts a read-write transaction on the main graph. On a sharded
// database it panics (it cannot report an error): use BeginSharded, whose
// transactions speak global IDs and commit atomically across shards.
func (db *DB) Begin() *Tx {
	if db.cluster != nil {
		panic("h2tap: Begin on a sharded database; use BeginSharded")
	}
	return db.store.Begin()
}

// BulkLoad loads an initial dataset, bypassing per-operation transaction
// overhead. It must run before concurrent transactions.
func (db *DB) BulkLoad(nodes []NodeSpec, edges []EdgeSpec) error {
	if db.cluster != nil {
		return fmt.Errorf("%w: BulkLoad (load through BeginSharded transactions)", ErrSharded)
	}
	_, err := db.store.BulkLoad(nodes, edges)
	return err
}

// StartEngine builds the initial replica from the current committed
// snapshot and starts the analytics machinery. It is called implicitly by
// the first RunAnalytics/Submit.
func (db *DB) StartEngine() error {
	if db.cluster != nil {
		return db.cluster.StartEngines()
	}
	db.engineOnce.Do(func() {
		cfg := htap.Config{
			Replica:       db.opts.Replica,
			Device:        db.opts.Device,
			PageRankIters: db.opts.PageRankIters,
			Damping:       db.opts.Damping,
			PersistPool:   db.csrPool,
			Retry:         db.opts.Retry,
			HighWater:     db.opts.DeltaHighWater,
			Obs:           db.opts.Observer,
			OnCycle:       db.opts.OnPropagation,
			SlowCycle:     db.opts.SlowCycleThreshold,
		}
		if db.opts.EnableCostModel {
			m, err := htap.Calibrate(db.store)
			if err != nil {
				db.engineErr = fmt.Errorf("h2tap: cost model calibration: %w", err)
				return
			}
			cfg.CostModel = m
		}
		// The engine registers its own delta store as a capturer; hand it
		// ours instead so deltas captured before engine start are not lost.
		cfg.DeltaStore = db.ds
		e, err := htap.NewEngineWithExistingCapturer(db.store, cfg)
		if err != nil {
			db.engineErr = err
			return
		}
		db.engine = e
		db.engineRef.Store(e)
		db.queue = htap.NewQueue(e)
	})
	return db.engineErr
}

// RunAnalytics executes one analytics request synchronously with §4.3
// freshness semantics (propagating pending deltas first if needed). src is
// the source vertex for BFS and SSSP.
func (db *DB) RunAnalytics(kind AnalyticsKind, src NodeID) (*Result, error) {
	if db.cluster != nil {
		return db.shardedRunAnalytics(kind, src)
	}
	if err := db.StartEngine(); err != nil {
		return nil, err
	}
	return db.engine.RunAnalytics(kind, src)
}

// Submit enqueues an analytics request on the §4.3 dispatch queue and
// returns a ticket to wait on. Fresh requests run concurrently; stale ones
// trigger pipelined update propagation.
func (db *DB) Submit(kind AnalyticsKind, src NodeID) (*Ticket, error) {
	if db.cluster != nil {
		return nil, fmt.Errorf("%w: Submit (use RunAnalytics or RunAnalyticsStitched)", ErrSharded)
	}
	if err := db.StartEngine(); err != nil {
		return nil, err
	}
	return db.queue.Submit(kind, src)
}

// Propagate forces one update-propagation cycle. With a persistent delta
// store, a latched PMem failure surfaces here (and at commit) rather than
// propagating deltas whose durable image has diverged.
func (db *DB) Propagate() (*PropagationReport, error) {
	if db.cluster != nil {
		return db.shardedPropagate()
	}
	if err := db.ds.PersistErr(); err != nil {
		return nil, fmt.Errorf("h2tap: persistent delta store failed: %w", err)
	}
	if err := db.StartEngine(); err != nil {
		return nil, err
	}
	return db.engine.Propagate()
}

// Stats is a point-in-time snapshot of system counters.
type Stats struct {
	LiveNodes, LiveRels int64
	DeltaRecords        uint64
	DeltaBytes          uint64 // the §6.3 footprint metric
	DeltaMode           bool
	ReplicaTS           uint64
	Propagations        int64
	Rebuilds            int64
	DeviceMemUsed       int64
	DeviceSimTime       sim.Duration
	Health              Health
	Retries             int64
	FallbackRebuilds    int64
	DegradedCycles      int64

	// Sharded-mode fields (zero on single-domain databases). LiveNodes stays
	// the logical node count; the ghost stand-in rows that shards hold for
	// cross-shard edges are reported separately as GhostNodes.
	Shards          int
	ShardWatermarks []uint64
	StitchEpoch     uint64
	CrossTxLive     int
	GhostNodes      int64
}

// Stats reports current counters.
func (db *DB) Stats() Stats {
	if db.cluster != nil {
		return db.shardedStats()
	}
	st := Stats{
		LiveNodes:    db.store.LiveNodes(),
		LiveRels:     db.store.LiveRels(),
		DeltaRecords: db.ds.Records(),
		DeltaBytes:   db.ds.ArrayBytes(),
		DeltaMode:    db.ds.DeltaMode(),
	}
	if db.engine != nil {
		st.ReplicaTS = uint64(db.engine.ReplicaTS())
		st.Propagations = db.engine.Propagations()
		st.Rebuilds = db.engine.Rebuilds()
		st.DeviceMemUsed = db.engine.Device().MemUsed()
		st.DeviceSimTime = db.engine.Device().SimTime()
		st.Health, _ = db.engine.Health()
		st.Retries = db.engine.Retries()
		st.FallbackRebuilds = db.engine.FallbackRebuilds()
		st.DegradedCycles = db.engine.DegradedCycles()
	}
	return st
}

// Health reports the analytics engine's availability state and, when
// Degraded, the fault that caused it. A latched WAL failure (sticky: every
// commit is refused until recovery) also reports Degraded. Before the
// engine starts the database is trivially Healthy bar the WAL latch.
func (db *DB) Health() (Health, error) {
	if db.cluster != nil {
		return db.shardedHealth()
	}
	if db.wal != nil {
		if err := db.wal.Stats().Failed; err != nil {
			return Degraded, fmt.Errorf("h2tap: wal failed: %w", err)
		}
	}
	if db.engine == nil {
		return Healthy, nil
	}
	return db.engine.Health()
}

// ReplicaStaleness reports the current replica staleness bound (zero
// before the engine starts).
func (db *DB) ReplicaStaleness() Staleness {
	if db.cluster != nil || db.engine == nil {
		return Staleness{}
	}
	return db.engine.Staleness()
}

// Scrub verifies the GPU replica against a main-graph snapshot at the
// replica's own freshness watermark and forces a full rebuild on
// divergence. It starts the engine if needed.
func (db *DB) Scrub() (*ScrubReport, error) {
	if db.cluster != nil {
		return nil, fmt.Errorf("%w: Scrub", ErrSharded)
	}
	if err := db.StartEngine(); err != nil {
		return nil, err
	}
	return db.engine.Scrub()
}

// LastCommitted reports the newest committed transaction timestamp. Shard
// timestamp domains are independent; on a sharded database this is the
// maximum across shards (an upper bound, not a global ordering point).
func (db *DB) LastCommitted() uint64 {
	if db.cluster != nil {
		var max uint64
		for i := 0; i < db.cluster.Shards(); i++ {
			if ts := uint64(db.cluster.Domain(i).Store().Oracle().LastCommitted()); ts > max {
				max = ts
			}
		}
		return max
	}
	return uint64(db.store.Oracle().LastCommitted())
}

// SnapshotTS returns a timestamp covering everything committed so far, for
// use with snapshot read helpers (single-domain databases only; shard
// timestamp domains are independent).
func (db *DB) SnapshotTS() mvto.TS { return db.store.Oracle().LastCommitted() }

// Store exposes the underlying graph store for advanced use (snapshot
// reads, degree queries). Nil on a sharded database — use
// Cluster().Domain(i).Store for per-shard access.
func (db *DB) Store() *graph.Store { return db.store }

// Engine exposes the underlying H2TAP engine after StartEngine.
func (db *DB) Engine() *htap.Engine { return db.engine }

// DeltaStore exposes the underlying DELTA_FE store.
func (db *DB) DeltaStore() *deltastore.Store { return db.ds }

// Checkpoint compacts the write-ahead log to a snapshot of the current
// committed state (a no-op without PersistDir). It is safe with fully
// concurrent commits: the store's commit barrier drains in-flight commits
// and blocks new ones for the duration of the swap, and the swap itself is
// crash-atomic (temp file + fsync + rename), so a crash at any point leaves
// either the old or the new log intact.
func (db *DB) Checkpoint() error {
	if db.cluster != nil {
		return db.cluster.Checkpoint()
	}
	if db.wal == nil {
		return nil
	}
	if err := db.wal.Rotate(db.store); err != nil {
		return fmt.Errorf("h2tap: checkpoint: %w", err)
	}
	return nil
}

// Close shuts the queue down and closes the write-ahead log and persistent
// pools. Close is idempotent: second and later calls return the first
// call's result without touching the already-closed handles.
func (db *DB) Close() error {
	if db.cluster != nil {
		return db.cluster.Close()
	}
	db.closeOnce.Do(func() {
		if db.queue != nil {
			db.queue.Close()
		}
		db.obsMu.Lock()
		for _, s := range db.obsSrvs {
			s.Close()
		}
		db.obsSrvs = nil
		db.obsMu.Unlock()
		var firstErr error
		if db.wal != nil {
			if err := db.wal.Close(); err != nil {
				firstErr = err
			}
		}
		for _, p := range []*pmem.Pool{db.deltaPool, db.csrPool} {
			if p != nil {
				if err := p.Close(); err != nil && firstErr == nil {
					firstErr = err
				}
			}
		}
		if firstErr == nil {
			// Surface a latched delta-persistence failure even if the
			// handles closed cleanly: the durable image is stale.
			firstErr = db.ds.PersistErr()
		}
		db.closeErr = firstErr
	})
	return db.closeErr
}

// CostModel re-exports the §6.4 cost model type for advanced configuration.
type CostModel = costmodel.Model
