package h2tap_test

import (
	"fmt"

	"h2tap"
)

// The minimal H2TAP loop: transactions on the main property graph, then
// analytics on the replica — propagation happens automatically when the
// replica is stale.
func Example() {
	db, err := h2tap.Open(h2tap.Options{})
	if err != nil {
		panic(err)
	}
	defer db.Close()

	tx := db.Begin()
	a, _ := tx.AddNode("Person", map[string]h2tap.Value{"name": h2tap.Str("ada")})
	b, _ := tx.AddNode("Person", map[string]h2tap.Value{"name": h2tap.Str("bob")})
	c, _ := tx.AddNode("Person", map[string]h2tap.Value{"name": h2tap.Str("cyd")})
	tx.AddRel(a, b, "knows", 1)
	tx.AddRel(b, c, "knows", 1)
	if err := tx.Commit(); err != nil {
		panic(err)
	}

	res, err := db.RunAnalytics(h2tap.BFS, a)
	if err != nil {
		panic(err)
	}
	fmt.Println("bfs level of cyd:", res.Levels[c])
	// Output: bfs level of cyd: 2
}

// Transactional traversal queries run against the main graph under MVTO
// snapshot semantics, independent of the analytics replica.
func ExampleTx_Match() {
	db, _ := h2tap.Open(h2tap.Options{})
	defer db.Close()

	tx := db.Begin()
	for i, name := range []string{"ada", "bob", "cyd"} {
		tx.AddNode("Person", map[string]h2tap.Value{
			"name": h2tap.Str(name), "age": h2tap.Int(int64(30 + i*10)),
		})
	}
	tx.Commit()

	q := db.Begin()
	defer q.Abort()
	names, err := q.Match("Person").
		Where("age", func(v h2tap.Value) bool { return v.AsInt() >= 40 }).
		CollectProps("name")
	if err != nil {
		panic(err)
	}
	for _, n := range names {
		fmt.Println(n.AsString())
	}
	// Output:
	// bob
	// cyd
}

// Forcing a propagation cycle reports the §5 update-handling breakdown.
func ExampleDB_Propagate() {
	db, _ := h2tap.Open(h2tap.Options{})
	defer db.Close()
	tx := db.Begin()
	a, _ := tx.AddNode("P", nil)
	b, _ := tx.AddNode("P", nil)
	tx.Commit()
	db.StartEngine()

	tx2 := db.Begin()
	tx2.AddRel(a, b, "knows", 1)
	tx2.Commit()

	rep, _ := db.Propagate()
	fmt.Println("records consumed:", rep.Records)
	fmt.Println("rebuild used:", rep.Rebuild)
	// Output:
	// records consumed: 1
	// rebuild used: false
}
