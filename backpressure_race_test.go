package h2tap

import (
	"errors"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"h2tap/internal/faultinject"
)

// TestErrBackpressureSentinel pins the satellite contract: ErrBackpressure
// is an errors.New sentinel that round-trips through the facade's commit
// path wrapped (never returned bare), so clients must match it with
// errors.Is — exactly what the network service layer does to map it onto
// HTTP 503 + Retry-After.
func TestErrBackpressureSentinel(t *testing.T) {
	db, ids := seedDB(t, Options{
		DeltaHighWater: 4,
		Retry:          RetryPolicy{MaxAttempts: 2, Backoff: 10 * time.Microsecond, MaxBackoff: 20 * time.Microsecond},
	}, 4)

	plan := faultinject.NewGPUPlan()
	plan.Arm(faultinject.GPUReplace, 1, faultinject.Persistent)
	plan.Arm(faultinject.GPUReplaceStreamed, 1, faultinject.Persistent)
	db.Engine().Device().SetFaultInjector(plan)

	commitEdge := func(i int) error {
		tx := db.Begin()
		n, err := tx.AddNode("Person", nil)
		if err != nil {
			tx.Abort()
			return err
		}
		if _, err := tx.AddRel(ids[i%4], n, "knows", float64(i)); err != nil {
			tx.Abort()
			return err
		}
		return tx.Commit()
	}
	if err := commitEdge(0); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Propagate(); !errors.Is(err, faultinject.ErrGPUInjected) {
		t.Fatalf("propagate under wedged device = %v", err)
	}

	var got error
	for i := 1; i < 16 && got == nil; i++ {
		if err := commitEdge(i); err != nil {
			got = err
		}
	}
	if got == nil {
		t.Fatal("no commit hit backpressure")
	}
	if !errors.Is(got, ErrBackpressure) {
		t.Fatalf("errors.Is(%v, ErrBackpressure) = false", got)
	}
	if got == ErrBackpressure { //nolint:errorlint // asserting wrapping on purpose
		t.Fatal("commit returned the bare sentinel; want it wrapped with commit-path context")
	}
	if !strings.Contains(got.Error(), "high-water") {
		t.Fatalf("wrapped message lost the sentinel text: %q", got)
	}
}

// TestBackpressureRaceHealthFlips is the facade-level race test: committers
// hammer the backpressure guard while the engine flips Healthy↔Degraded
// under an arming/healing fault plan. Run under -race it checks the
// commit-path engineRef/Backpressure reads against setHealth writes; the
// invariants checked here are weaker but load-bearing — commits only ever
// fail with ErrBackpressure, and the system always recovers to Healthy
// with commits admitted again.
func TestBackpressureRaceHealthFlips(t *testing.T) {
	db, ids := seedDB(t, Options{
		DeltaHighWater: 8,
		Retry:          RetryPolicy{MaxAttempts: 1, Backoff: 10 * time.Microsecond, MaxBackoff: 20 * time.Microsecond},
	}, 8)

	plan := faultinject.NewGPUPlan()
	db.Engine().Device().SetFaultInjector(plan)

	var (
		stop        atomic.Bool
		committed   atomic.Int64
		backpressed atomic.Int64
	)
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; !stop.Load(); i++ {
				tx := db.Begin()
				n, err := tx.AddNode("Person", nil)
				if err != nil {
					tx.Abort()
					t.Errorf("AddNode: %v", err)
					return
				}
				if _, err := tx.AddRel(ids[(w+i)%8], n, "knows", float64(i)); err != nil {
					tx.Abort()
					t.Errorf("AddRel: %v", err)
					return
				}
				switch err := tx.Commit(); {
				case err == nil:
					committed.Add(1)
				case errors.Is(err, ErrBackpressure):
					backpressed.Add(1)
				default:
					t.Errorf("commit failed with %v, want nil or ErrBackpressure", err)
					return
				}
			}
		}(w)
	}

	// Flip the engine: wedge → failed propagate (Degraded) → heal →
	// successful propagate (Healthy), repeatedly, concurrent with commits.
	flips := 20
	if testing.Short() {
		flips = 6
	}
	for f := 0; f < flips; f++ {
		plan.Arm(faultinject.GPUReplace, 1, faultinject.Persistent)
		plan.Arm(faultinject.GPUReplaceStreamed, 1, faultinject.Persistent)
		plan.Arm(faultinject.GPUUpload, 1, faultinject.Persistent)
		db.Propagate() //nolint:errcheck // expected to fail while wedged
		plan.Heal()
		if _, err := db.Propagate(); err != nil {
			t.Errorf("healed propagate %d: %v", f, err)
			break
		}
	}
	// The flip storm can outrun the committer goroutines' first
	// iterations; hold the system Healthy until at least one commit has
	// landed so the final assertions are about behavior, not scheduling.
	for start := time.Now(); committed.Load() == 0 && time.Since(start) < 5*time.Second; {
		time.Sleep(time.Millisecond)
	}
	stop.Store(true)
	wg.Wait()
	if t.Failed() {
		return
	}

	// Settle: one final healthy cycle must lift any lingering backpressure.
	if _, err := db.Propagate(); err != nil {
		t.Fatalf("final propagate: %v", err)
	}
	if h, ferr := db.Health(); h != Healthy {
		t.Fatalf("final health = %v (%v)", h, ferr)
	}
	tx := db.Begin()
	if _, err := tx.AddNode("Person", nil); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatalf("commit after settle: %v", err)
	}
	if committed.Load() == 0 {
		t.Fatal("no commit succeeded during the flip storm")
	}
	t.Logf("flips=%d committed=%d backpressured=%d degraded_cycles=%d",
		flips, committed.Load(), backpressed.Load(), db.Stats().DegradedCycles)
}
