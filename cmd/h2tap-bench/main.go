// Command h2tap-bench regenerates the paper's evaluation tables and
// figures (§6). Each experiment prints the series of the corresponding
// plot; EXPERIMENTS.md records the expected shapes.
//
// Usage:
//
//	h2tap-bench -list
//	h2tap-bench -exp fig3
//	h2tap-bench -exp all
//	h2tap-bench -exp table1 -rmatscale 18
//	h2tap-bench -exp all -full        # approach paper sizes (slow, big)
//	h2tap-bench -faults 200           # GPU-fault soak: 200 randomized runs
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"os"
	"sync"
	"time"

	"h2tap/internal/crashtest"
	"h2tap/internal/experiments"
	"h2tap/internal/faultinject"
	"h2tap/internal/htap"
	"h2tap/internal/obs"
)

func main() {
	var (
		exp        = flag.String("exp", "all", "experiment id (fig3..fig12, table1, sec66, costmodel) or 'all'")
		list       = flag.Bool("list", false, "list experiments and exit")
		full       = flag.Bool("full", false, "approach paper-scale sizes (slow, memory-hungry)")
		downscale  = flag.Int("downscale", 0, "override dataset downscale factor")
		queryScale = flag.Int("queryscale", 0, "override query-count scale factor")
		rmatScale  = flag.Int("rmatscale", 0, "override RMAT scale for table1")
		workers    = flag.Int("workers", 0, "propagation worker count (0 = GOMAXPROCS); adds a series point to parmerge")
		seed       = flag.Int64("seed", 1, "random seed")
		skipHeavy  = flag.Bool("skip-heavy", false, "skip long-running experiments (fig9, table1)")
		jsonOut    = flag.Bool("json", false, "emit one JSON object per experiment instead of tables, plus one line per propagation cycle")
		faults     = flag.Int("faults", 0, "GPU-fault soak mode: run this many randomized fault injections and exit")
		shards     = flag.Int("shards", 0, "shard count for the shards experiment (0 = sweep 1,2,4,8; N>1 compares single-domain vs N)")
		obsAddr    = flag.String("obs", "", "serve /metrics, /healthz, /debug/trace and /debug/pprof on this address (e.g. 127.0.0.1:0) while experiments run")
		obsLinger  = flag.Duration("obs-linger", 0, "keep the -obs listener up this long after the experiments finish")
		cycleLog   = flag.String("cyclelog", "", "append one JSON line per propagation cycle to this file ('-' for stdout)")
	)
	flag.Parse()

	if *faults > 0 {
		os.Exit(faultSoak(*faults, *seed))
	}

	if *list {
		for _, e := range experiments.All() {
			heavy := ""
			if e.Heavy {
				heavy = " (heavy)"
			}
			fmt.Printf("%-10s %s%s\n", e.ID, e.Desc, heavy)
		}
		return
	}

	cfg := experiments.Default()
	if *full {
		cfg = experiments.Full()
	}
	if *downscale > 0 {
		cfg.Downscale = *downscale
	}
	if *queryScale > 0 {
		cfg.QueryScale = *queryScale
	}
	if *rmatScale > 0 {
		cfg.RMATScale = *rmatScale
	}
	if *workers > 0 {
		cfg.Workers = *workers
	}
	cfg.Seed = *seed
	if *shards > 0 {
		cfg.Shards = *shards
	}

	if *obsAddr != "" {
		cfg.Obs = obs.New()
		srv, err := obs.Serve(*obsAddr, cfg.Obs)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer srv.Close()
		// The smoke harness parses this line for the bound port.
		fmt.Fprintf(os.Stderr, "obs: listening on %s\n", srv.Addr())
		if *obsLinger > 0 {
			defer time.Sleep(*obsLinger)
		}
	}

	// Per-cycle JSON stream: to the -cyclelog file, or to stdout alongside
	// the -json table objects.
	var outMu sync.Mutex
	if *cycleLog != "" || *jsonOut {
		w := io.Writer(os.Stdout)
		if *cycleLog != "" && *cycleLog != "-" {
			f, err := os.Create(*cycleLog)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			defer f.Close()
			w = f
		}
		cenc := json.NewEncoder(w)
		cfg.OnCycle = func(rep *htap.PropagationReport) {
			line := cycleLine{Type: "cycle", Health: rep.Health.String(), Report: rep}
			if rep.PersistErr != nil {
				line.PersistErr = rep.PersistErr.Error()
			}
			outMu.Lock()
			defer outMu.Unlock()
			if err := cenc.Encode(line); err != nil {
				fmt.Fprintln(os.Stderr, err)
			}
		}
	}

	var toRun []experiments.Experiment
	if *exp == "all" {
		for _, e := range experiments.All() {
			if *skipHeavy && e.Heavy {
				fmt.Printf("-- skipping %s (heavy)\n\n", e.ID)
				continue
			}
			toRun = append(toRun, e)
		}
	} else {
		e, err := experiments.ByID(*exp)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		toRun = append(toRun, e)
	}

	if !*jsonOut {
		fmt.Printf("h2tap-bench: downscale=%d queryscale=%d rmatscale=%d seed=%d\n\n",
			cfg.Downscale, cfg.QueryScale, cfg.RMATScale, cfg.Seed)
	}
	enc := json.NewEncoder(os.Stdout)
	for _, e := range toRun {
		start := time.Now()
		tab := e.Run(cfg)
		tab.Note("experiment wall time: %v", time.Since(start).Round(time.Millisecond))
		if *jsonOut {
			outMu.Lock()
			err := enc.Encode(tab.JSON())
			outMu.Unlock()
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
		} else {
			tab.Fprint(os.Stdout)
		}
	}
}

// cycleLine is the per-propagation-cycle JSON record emitted by -json /
// -cyclelog: the full report (phase walls, predicted costs, staleness)
// plus flattened health and persist-error strings.
type cycleLine struct {
	Type       string                  `json:"type"`
	Health     string                  `json:"health"`
	PersistErr string                  `json:"persist_err,omitempty"`
	Report     *htap.PropagationReport `json:"report"`
}

// faultSoak hammers the propagation pipeline with randomized GPU faults:
// each round picks a replica kind, a device operation, an occurrence
// within that operation's fault-free count, and a fault kind, then runs
// the crashtest GPU workload and checks every propagation invariant
// (failure-atomic consumption, degraded availability, post-heal
// convergence, zero scrub divergence). Returns a non-zero exit code if any
// round violates an invariant.
func faultSoak(rounds int, seed int64) int {
	replicas := []htap.ReplicaKind{htap.StaticCSR, htap.DynamicHash}
	counts := make([]map[string]int64, len(replicas))
	for i, r := range replicas {
		c, err := crashtest.GPUGoldenRun(r)
		if err != nil {
			fmt.Fprintf(os.Stderr, "fault soak: golden run (%v): %v\n", r, err)
			return 1
		}
		counts[i] = c
	}

	rng := rand.New(rand.NewSource(seed))
	kinds := []faultinject.GPUFaultKind{faultinject.Transient, faultinject.Persistent}
	failures, injected := 0, 0
	start := time.Now()
	for i := 0; i < rounds; i++ {
		ri := rng.Intn(len(replicas))
		op := faultinject.GPUOps[rng.Intn(len(faultinject.GPUOps))]
		max := counts[ri][op]
		if max == 0 {
			continue // workload never performs this op on this replica kind
		}
		res := crashtest.RunGPUFaultPoint(replicas[ri], op, 1+rng.Int63n(max), kinds[rng.Intn(len(kinds))])
		if res.Injected > 0 {
			injected++
		}
		if res.Err != nil {
			failures++
			fmt.Fprintf(os.Stderr, "FAIL %v fault at %s#%d (%v): %v\n",
				res.Kind, res.Op, res.N, res.Replica, res.Err)
		}
	}
	fmt.Printf("fault soak: %d rounds (%d injected a fault), %d failures, %v\n",
		rounds, injected, failures, time.Since(start).Round(time.Millisecond))
	if failures > 0 {
		return 1
	}
	return 0
}
