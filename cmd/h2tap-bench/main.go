// Command h2tap-bench regenerates the paper's evaluation tables and
// figures (§6). Each experiment prints the series of the corresponding
// plot; EXPERIMENTS.md records the expected shapes.
//
// Usage:
//
//	h2tap-bench -list
//	h2tap-bench -exp fig3
//	h2tap-bench -exp all
//	h2tap-bench -exp table1 -rmatscale 18
//	h2tap-bench -exp all -full        # approach paper sizes (slow, big)
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"time"

	"h2tap/internal/experiments"
)

func main() {
	var (
		exp        = flag.String("exp", "all", "experiment id (fig3..fig12, table1, sec66, costmodel) or 'all'")
		list       = flag.Bool("list", false, "list experiments and exit")
		full       = flag.Bool("full", false, "approach paper-scale sizes (slow, memory-hungry)")
		downscale  = flag.Int("downscale", 0, "override dataset downscale factor")
		queryScale = flag.Int("queryscale", 0, "override query-count scale factor")
		rmatScale  = flag.Int("rmatscale", 0, "override RMAT scale for table1")
		workers    = flag.Int("workers", 0, "propagation worker count (0 = GOMAXPROCS); adds a series point to parmerge")
		seed       = flag.Int64("seed", 1, "random seed")
		skipHeavy  = flag.Bool("skip-heavy", false, "skip long-running experiments (fig9, table1)")
		jsonOut    = flag.Bool("json", false, "emit one JSON object per experiment instead of tables")
	)
	flag.Parse()

	if *list {
		for _, e := range experiments.All() {
			heavy := ""
			if e.Heavy {
				heavy = " (heavy)"
			}
			fmt.Printf("%-10s %s%s\n", e.ID, e.Desc, heavy)
		}
		return
	}

	cfg := experiments.Default()
	if *full {
		cfg = experiments.Full()
	}
	if *downscale > 0 {
		cfg.Downscale = *downscale
	}
	if *queryScale > 0 {
		cfg.QueryScale = *queryScale
	}
	if *rmatScale > 0 {
		cfg.RMATScale = *rmatScale
	}
	if *workers > 0 {
		cfg.Workers = *workers
	}
	cfg.Seed = *seed

	var toRun []experiments.Experiment
	if *exp == "all" {
		for _, e := range experiments.All() {
			if *skipHeavy && e.Heavy {
				fmt.Printf("-- skipping %s (heavy)\n\n", e.ID)
				continue
			}
			toRun = append(toRun, e)
		}
	} else {
		e, err := experiments.ByID(*exp)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		toRun = append(toRun, e)
	}

	if !*jsonOut {
		fmt.Printf("h2tap-bench: downscale=%d queryscale=%d rmatscale=%d seed=%d\n\n",
			cfg.Downscale, cfg.QueryScale, cfg.RMATScale, cfg.Seed)
	}
	enc := json.NewEncoder(os.Stdout)
	for _, e := range toRun {
		start := time.Now()
		tab := e.Run(cfg)
		tab.Note("experiment wall time: %v", time.Since(start).Round(time.Millisecond))
		if *jsonOut {
			if err := enc.Encode(tab.JSON()); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
		} else {
			tab.Fprint(os.Stdout)
		}
	}
}
