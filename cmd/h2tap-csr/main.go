// Command h2tap-csr inspects and exercises the CSR replica machinery: build
// a CSR from a generated graph, validate its invariants, time the rebuild /
// copy / merge paths (§5.4, §6.4), and verify merge-equals-rebuild on a
// random update stream.
//
// Usage:
//
//	h2tap-csr -sf 1 -downscale 10
//	h2tap-csr -kind rmat -scale 16 -deltas 100000
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"time"

	"h2tap/internal/csr"
	"h2tap/internal/deltastore"
	"h2tap/internal/graph"
	"h2tap/internal/ldbc"
)

func main() {
	var (
		kind      = flag.String("kind", "snb", "dataset kind: snb | rmat")
		sf        = flag.Float64("sf", 1, "SNB scale factor")
		downscale = flag.Int("downscale", 10, "SNB downscale divisor")
		scale     = flag.Int("scale", 14, "RMAT scale")
		seed      = flag.Int64("seed", 1, "random seed")
		deltas    = flag.Int("deltas", 50_000, "update transactions for the merge check")
		verify    = flag.Bool("verify", true, "verify merge == rebuild")
	)
	flag.Parse()

	var ds *ldbc.Dataset
	switch *kind {
	case "snb":
		ds = ldbc.GenerateSNB(ldbc.SNBConfig{SF: *sf, Downscale: *downscale, Seed: *seed})
	case "rmat":
		ds = ldbc.GenerateRMAT(ldbc.RMATConfig{Scale: *scale, Seed: *seed})
	default:
		fmt.Fprintf(os.Stderr, "unknown dataset kind %q\n", *kind)
		os.Exit(2)
	}
	s := graph.NewStore()
	ts, err := ds.Load(s)
	if err != nil {
		fail(err)
	}
	fe := deltastore.NewVolatile()
	s.AddCapturer(fe)

	t0 := time.Now()
	base := csr.Build(s, ts)
	buildT := time.Since(t0)
	if err := base.Validate(); err != nil {
		fail(err)
	}
	fmt.Printf("CSR: %d nodes, %d edges, %s — built in %v\n",
		base.NumNodes(), base.NumEdges(), mb(base.Bytes()), buildT.Round(time.Microsecond))

	t1 := time.Now()
	_ = base.Copy()
	fmt.Printf("copy: %v\n", time.Since(t1).Round(time.Microsecond))

	// Random update stream through real transactions.
	r := rand.New(rand.NewSource(*seed))
	slots := int(s.NumNodeSlots())
	committed := 0
	for i := 0; i < *deltas; i++ {
		tx := s.Begin()
		var err error
		src := uint64(r.Intn(slots))
		if r.Intn(10) < 7 {
			_, err = tx.AddRel(src, uint64(r.Intn(slots)), "edge", float64(r.Intn(9)+1))
		} else {
			rels, oerr := tx.OutRels(src)
			if oerr != nil || len(rels) == 0 {
				tx.Abort()
				continue
			}
			err = tx.DeleteRel(rels[r.Intn(len(rels))].ID)
		}
		if err != nil {
			tx.Abort()
			continue
		}
		tx.Commit()
		committed++
	}
	fmt.Printf("applied %d update transactions (%d delta records)\n", committed, fe.Records())

	tp := s.Oracle().Begin()
	t2 := time.Now()
	batch := fe.Scan(tp.TS())
	scanT := time.Since(t2)
	t3 := time.Now()
	merged, st := csr.Merge(base, batch)
	mergeT := time.Since(t3)
	fmt.Printf("scan: %v (%d records → %d combined deltas)\n",
		scanT.Round(time.Microsecond), batch.Records, len(batch.Deltas))
	fmt.Printf("merge: %v (%d rows copied, %d modified, %d added)\n",
		mergeT.Round(time.Microsecond), st.RowsCopied, st.RowsModified, st.RowsAdded)
	if err := merged.Validate(); err != nil {
		fail(fmt.Errorf("merged CSR invalid: %w", err))
	}

	if *verify {
		t4 := time.Now()
		rebuilt := csr.Build(s, tp.TS()-1)
		rebuildT := time.Since(t4)
		if !csr.Equal(merged, rebuilt) {
			fail(fmt.Errorf("CONSISTENCY VIOLATION: merge != rebuild"))
		}
		fmt.Printf("verify: merge == rebuild ✓ (rebuild took %v, %.1fx the merge)\n",
			rebuildT.Round(time.Microsecond), rebuildT.Seconds()/mergeT.Seconds())
	}
	tp.Commit()
}

func mb(n int64) string { return fmt.Sprintf("%.2f MiB", float64(n)/(1<<20)) }

func fail(err error) {
	fmt.Fprintln(os.Stderr, "h2tap-csr:", err)
	os.Exit(1)
}
