// Command h2tap-server serves an H2TAP database over HTTP/JSON with the
// overload-robust admission-control ladder of internal/server: bounded
// in-flight requests, per-session rate limits, per-request deadlines,
// health-aware load shedding (429/503 + Retry-After), connection caps and
// slow-loris timeouts, and graceful drain on SIGTERM/SIGINT (stop
// accepting, drain in-flight within -drain-timeout, checkpoint, close).
//
// Usage:
//
//	h2tap-server -addr 127.0.0.1:8080 -persist /var/lib/h2tap -sync-wal
//	h2tap-server -addr 127.0.0.1:0 -max-inflight 64 -session-rate 100
//
// Endpoints (see README "Serving"):
//
//	POST /v1/tx/begin /v1/tx/apply /v1/tx/commit /v1/tx/abort
//	POST /v1/commit              one-shot transaction
//	POST /v1/analytics           {"kind":"pagerank","src":0,"wait":true}
//	GET  /v1/analytics/poll?ticket=ID
//	GET  /v1/stats  /healthz  (/metrics, /debug/* with -obs)
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"syscall"
	"time"

	"h2tap"
	"h2tap/internal/server"
)

func main() {
	var (
		addr         = flag.String("addr", "127.0.0.1:8080", "listen address (host:0 for ephemeral)")
		persist      = flag.String("persist", "", "persistence directory (empty = volatile)")
		poolSize     = flag.Int64("pool-size", 0, "persistent pool size in bytes (0 = 1 GiB default)")
		syncWAL      = flag.Bool("sync-wal", false, "fsync the WAL on every commit batch")
		gcMaxBatch   = flag.Int("gc-max-batch", 0, "max commits per WAL group-commit batch (0 = default 64, 1 = serialized)")
		gcMaxDelay   = flag.Duration("gc-max-delay", 0, "how long a group-commit leader lingers for joiners (0 = flush immediately)")
		replica      = flag.String("replica", "static", "replica kind: static | dynamic")
		shards       = flag.Int("shards", 0, "shard the engine into N fault domains (0/1 = single-domain)")
		undirected   = flag.Bool("undirected", false, "undirected main graph")
		highWater    = flag.Uint64("high-water", 1_000_000, "delta-store high-water mark (0 = no backpressure)")
		obsFlag      = flag.Bool("obs", true, "serve /metrics, /debug/trace, /debug/pprof on the same port")
		maxConns     = flag.Int("max-conns", server.DefaultMaxConns, "max open connections")
		maxInflight  = flag.Int("max-inflight", server.DefaultMaxInFlight, "max concurrently executing requests")
		sessionRate  = flag.Float64("session-rate", server.DefaultSessionRate, "per-session sustained requests/s")
		sessionBurst = flag.Float64("session-burst", server.DefaultSessionBurst, "per-session burst size")
		deadline     = flag.Duration("deadline", server.DefaultDeadline, "default per-request deadline")
		maxDeadline  = flag.Duration("max-deadline", server.DefaultMaxDeadline, "cap on client-requested deadlines")
		drainTimeout = flag.Duration("drain-timeout", server.DefaultDrainTimeout, "graceful-drain bound on SIGTERM")
		maxBody      = flag.Int64("max-body", server.DefaultMaxBodyBytes, "max request body bytes")
		txIdle       = flag.Duration("tx-idle-timeout", server.DefaultTxIdleTimeout, "evict interactive transactions idle this long")
		traceSample  = flag.Int("trace-sample", server.DefaultTraceSample, "trace 1 in N API requests end to end (1 = all)")
		traceSlow    = flag.Duration("trace-slow", server.DefaultTraceSlow, "retain traced requests slower than this in /debug/requests")
	)
	flag.Parse()

	logger := log.New(os.Stderr, "", log.LstdFlags|log.Lmicroseconds)

	opts := h2tap.Options{
		PersistDir:      *persist,
		PersistPoolSize: *poolSize,
		SyncWAL:         *syncWAL,
		GroupCommit:     h2tap.GroupCommit{MaxBatch: *gcMaxBatch, MaxDelay: *gcMaxDelay},
		Shards:          *shards,
		Undirected:      *undirected,
		DeltaHighWater:  *highWater,
	}
	if *replica == "dynamic" {
		opts.Replica = h2tap.DynamicHash
	}
	var obsv *h2tap.Observer
	if *obsFlag {
		obsv = h2tap.NewObserver()
		opts.Observer = obsv
	}
	db, err := h2tap.Open(opts)
	if err != nil {
		fail(err)
	}

	cfg := server.Config{
		Addr:            *addr,
		MaxConns:        *maxConns,
		MaxInFlight:     *maxInflight,
		SessionRate:     *sessionRate,
		SessionBurst:    *sessionBurst,
		DefaultDeadline: *deadline,
		MaxDeadline:     *maxDeadline,
		DrainTimeout:    *drainTimeout,
		MaxBodyBytes:    *maxBody,
		TxIdleTimeout:   *txIdle,
		TraceSample:     *traceSample,
		TraceSlow:       *traceSlow,
	}
	srv, err := server.New(db, cfg, obsv, logger)
	if err != nil {
		db.Close()
		fail(err)
	}
	if err := srv.Start(); err != nil {
		db.Close()
		fail(err)
	}
	// The smoke harness and loadgen parse this exact line off stderr.
	fmt.Fprintf(os.Stderr, "server: listening on %s\n", srv.Addr())

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, syscall.SIGTERM, syscall.SIGINT)
	sig := <-sigc
	logger.Printf("server: %v received, draining (bound %v)", sig, *drainTimeout)

	start := time.Now()
	ctx, cancel := srv.DrainContext()
	defer cancel()
	drainErr := srv.Drain(ctx)
	closeErr := db.Close()
	switch {
	case drainErr != nil:
		logger.Printf("server: drain incomplete after %v: %v", time.Since(start).Round(time.Millisecond), drainErr)
		os.Exit(1)
	case closeErr != nil:
		logger.Printf("server: close: %v", closeErr)
		os.Exit(1)
	default:
		logger.Printf("server: clean drain in %v", time.Since(start).Round(time.Millisecond))
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "h2tap-server:", err)
	os.Exit(1)
}
