package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net"
	"net/http"
	"net/url"
	"os"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// clientConfig is the overload/fault harness: N concurrent connections
// driving the h2tap-server API at a target rate, reporting accepted-request
// latency percentiles and shed counts, optionally mixing in network-fault
// clients (slow-loris, mid-request disconnects, oversized and malformed
// bodies, clock-skewed deadlines).
type clientConfig struct {
	base     string
	conns    int
	rate     float64 // total target requests/s, 0 = open throttle
	duration time.Duration
	mix      string // commit | analytics | mixed
	faults   bool
	timeout  time.Duration
	jsonOut  bool
}

// clientReport aggregates one run. Exported fields marshal to the -json
// line the smoke script and CI parse.
type clientReport struct {
	Requests     int64            `json:"requests"`
	Accepted     int64            `json:"accepted"`
	Shed         map[string]int64 `json:"shed"` // by structured error code
	Errors       int64            `json:"errors"`
	CommitP50    float64          `json:"commit_p50_ms"`
	CommitP99    float64          `json:"commit_p99_ms"`
	AnalyticsP50 float64          `json:"analytics_p50_ms"`
	AnalyticsP99 float64          `json:"analytics_p99_ms"`
	Throughput   float64          `json:"accepted_per_sec"`
	Faults       map[string]int64 `json:"faults,omitempty"`
	// Server-side attribution, scraped from /debug/requests after the run:
	// how many slow traces the server retained during the window and which
	// phase dominated each (wal-fsync, 2pc, admission, ...). Omitted when
	// the endpoint is unreachable, so plain file-serving targets still work.
	SlowTraces     int64            `json:"slow_traces,omitempty"`
	SlowTracePhase map[string]int64 `json:"slow_trace_phases,omitempty"`
}

type latRecorder struct {
	mu      sync.Mutex
	commit  []float64 // ms
	analyze []float64
}

func (r *latRecorder) add(analytics bool, d time.Duration) {
	ms := float64(d) / float64(time.Millisecond)
	r.mu.Lock()
	if analytics {
		r.analyze = append(r.analyze, ms)
	} else {
		r.commit = append(r.commit, ms)
	}
	r.mu.Unlock()
}

func percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sort.Float64s(xs)
	i := int(p * float64(len(xs)-1))
	return xs[i]
}

// shedCounter tallies structured rejections by error code.
type shedCounter struct {
	mu sync.Mutex
	m  map[string]int64
}

func (s *shedCounter) inc(code string) {
	s.mu.Lock()
	s.m[code]++
	s.mu.Unlock()
}

type apiErrorEnvelope struct {
	Error struct {
		Code         string `json:"code"`
		Message      string `json:"message"`
		RetryAfterMs int64  `json:"retry_after_ms"`
	} `json:"error"`
}

// runClient drives the server and prints the report. Returns a process
// exit code.
func runClient(cfg clientConfig) int {
	u, err := url.Parse(cfg.base)
	if err != nil || u.Host == "" {
		fmt.Fprintf(os.Stderr, "h2tap-loadgen: bad -client URL %q\n", cfg.base)
		return 2
	}
	rec := &latRecorder{}
	sheds := &shedCounter{m: make(map[string]int64)}
	var requests, accepted, errs atomic.Int64

	// Pacer: a buffered token channel refilled on a 1ms tick. With rate 0
	// the channel is closed semantics-free and workers run open-throttle.
	var tokens chan struct{}
	stopPace := make(chan struct{})
	if cfg.rate > 0 {
		tokens = make(chan struct{}, cfg.conns*4)
		go func() {
			tick := time.NewTicker(time.Millisecond)
			defer tick.Stop()
			carry := 0.0
			for {
				select {
				case <-stopPace:
					return
				case <-tick.C:
					carry += cfg.rate / 1000
					for ; carry >= 1; carry-- {
						select {
						case tokens <- struct{}{}:
						default:
						}
					}
				}
			}
		}()
	}

	deadline := time.Now().Add(cfg.duration)
	var wg sync.WaitGroup
	for w := 0; w < cfg.conns; w++ {
		wg.Add(1)
		go func(worker int) {
			defer wg.Done()
			// One transport per worker = one real connection stream, the
			// "N concurrent connections" the harness advertises.
			tr := &http.Transport{MaxIdleConns: 2, MaxIdleConnsPerHost: 2}
			hc := &http.Client{Transport: tr, Timeout: cfg.timeout}
			defer tr.CloseIdleConnections()
			rng := rand.New(rand.NewSource(int64(worker)*7919 + 17))
			session := fmt.Sprintf("worker-%d", worker)
			for time.Now().Before(deadline) {
				if tokens != nil {
					select {
					case <-tokens:
					case <-time.After(10 * time.Millisecond):
						continue
					}
				}
				analytics := false
				switch cfg.mix {
				case "analytics":
					analytics = true
				case "mixed":
					analytics = rng.Intn(10) == 0
				}
				requests.Add(1)
				start := time.Now()
				var code string
				var ok bool
				if analytics {
					ok, code = doAnalytics(hc, cfg.base, session, rng)
				} else {
					ok, code = doCommit(hc, cfg.base, session, rng)
				}
				switch {
				case ok:
					accepted.Add(1)
					rec.add(analytics, time.Since(start))
				case code != "":
					sheds.inc(code)
				default:
					errs.Add(1)
				}
			}
		}(w)
	}

	var faultCounts map[string]int64
	var faultWG sync.WaitGroup
	if cfg.faults {
		faultCounts = runFaults(&faultWG, u.Host, cfg.base, deadline)
	}
	wg.Wait()
	close(stopPace)
	faultWG.Wait()

	rec.mu.Lock()
	rep := clientReport{
		Requests:     requests.Load(),
		Accepted:     accepted.Load(),
		Errors:       errs.Load(),
		Shed:         sheds.m,
		CommitP50:    percentile(rec.commit, 0.50),
		CommitP99:    percentile(rec.commit, 0.99),
		AnalyticsP50: percentile(rec.analyze, 0.50),
		AnalyticsP99: percentile(rec.analyze, 0.99),
		Throughput:   float64(accepted.Load()) / cfg.duration.Seconds(),
		Faults:       faultCounts,
	}
	rec.mu.Unlock()
	rep.SlowTraces, rep.SlowTracePhase = fetchSlowTraces(cfg.base, cfg.timeout)

	if cfg.jsonOut {
		json.NewEncoder(os.Stdout).Encode(rep) //nolint:errcheck
	} else {
		fmt.Printf("client: %d requests, %d accepted (%.0f/s), %d transport errors\n",
			rep.Requests, rep.Accepted, rep.Throughput, rep.Errors)
		fmt.Printf("commit latency:    p50 %.2fms  p99 %.2fms  (%d samples)\n",
			rep.CommitP50, rep.CommitP99, len(rec.commit))
		fmt.Printf("analytics latency: p50 %.2fms  p99 %.2fms  (%d samples)\n",
			rep.AnalyticsP50, rep.AnalyticsP99, len(rec.analyze))
		var codes []string
		for c := range rep.Shed {
			codes = append(codes, c)
		}
		sort.Strings(codes)
		for _, c := range codes {
			fmt.Printf("shed[%s]: %d\n", c, rep.Shed[c])
		}
		for f, n := range rep.Faults {
			fmt.Printf("fault[%s]: %d injected\n", f, n)
		}
		if rep.SlowTraces > 0 {
			var phases []string
			for p := range rep.SlowTracePhase {
				phases = append(phases, p)
			}
			sort.Strings(phases)
			fmt.Printf("server slow traces: %d retained\n", rep.SlowTraces)
			for _, p := range phases {
				fmt.Printf("slow-phase[%s]: %d\n", p, rep.SlowTracePhase[p])
			}
		}
	}
	if rep.Accepted == 0 {
		fmt.Fprintln(os.Stderr, "h2tap-loadgen: no request was accepted")
		return 1
	}
	return 0
}

// fetchSlowTraces scrapes the server's /debug/requests retention rings
// after a run and tallies the slow traces by dominant latency phase —
// closing the loop from client-observed p99 to server-side attribution in
// one report. Best-effort: any error (endpoint absent, server gone) yields
// zero values and the report simply omits the fields.
func fetchSlowTraces(base string, timeout time.Duration) (int64, map[string]int64) {
	hc := &http.Client{Timeout: timeout}
	resp, err := hc.Get(base + "/debug/requests")
	if err != nil {
		return 0, nil
	}
	defer func() {
		io.Copy(io.Discard, resp.Body) //nolint:errcheck
		resp.Body.Close()
	}()
	if resp.StatusCode != http.StatusOK {
		return 0, nil
	}
	var doc struct {
		Slow []struct {
			Dominant string `json:"dominant_phase"`
		} `json:"slow"`
	}
	if err := json.NewDecoder(io.LimitReader(resp.Body, 16<<20)).Decode(&doc); err != nil {
		return 0, nil
	}
	if len(doc.Slow) == 0 {
		return 0, nil
	}
	phases := make(map[string]int64)
	for _, s := range doc.Slow {
		p := s.Dominant
		if p == "" {
			p = "unknown"
		}
		phases[p]++
	}
	return int64(len(doc.Slow)), phases
}

// post sends one JSON request, classifying the outcome: accepted (2xx),
// shed (structured error code), or transport error ("").
func post(hc *http.Client, url, session string, body any) (ok bool, code string) {
	buf, err := json.Marshal(body)
	if err != nil {
		return false, ""
	}
	req, err := http.NewRequest(http.MethodPost, url, bytes.NewReader(buf))
	if err != nil {
		return false, ""
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("X-Session-ID", session)
	resp, err := hc.Do(req)
	if err != nil {
		return false, ""
	}
	defer func() {
		io.Copy(io.Discard, resp.Body) //nolint:errcheck
		resp.Body.Close()
	}()
	if resp.StatusCode < 300 {
		return true, ""
	}
	var env apiErrorEnvelope
	if err := json.NewDecoder(io.LimitReader(resp.Body, 4096)).Decode(&env); err == nil && env.Error.Code != "" {
		return false, env.Error.Code
	}
	return false, fmt.Sprintf("http_%d", resp.StatusCode)
}

// doCommit issues a small one-shot transaction: a fresh node linked to a
// random earlier one — the §6.2-style insert mix over the wire.
func doCommit(hc *http.Client, base, session string, rng *rand.Rand) (bool, string) {
	ops := []map[string]any{
		{"op": "add-node", "label": "Person", "props": map[string]any{"seq": rng.Int63n(1 << 30)}},
	}
	return post(hc, base+"/v1/commit", session, map[string]any{"ops": ops})
}

func doAnalytics(hc *http.Client, base, session string, rng *rand.Rand) (bool, string) {
	kinds := []string{"bfs", "pagerank", "wcc"}
	body := map[string]any{"kind": kinds[rng.Intn(len(kinds))], "src": 0, "wait": true}
	return post(hc, base+"/v1/analytics", session, body)
}

// runFaults starts the network-fault clients; each runs until the shared
// deadline and tallies how many faults it injected. These assert nothing
// themselves — the point is that the *server-side* report stays sane while
// they run (and the server tests assert exactly that).
func runFaults(wg *sync.WaitGroup, host, base string, deadline time.Time) map[string]int64 {
	counts := map[string]int64{}
	var mu sync.Mutex
	bump := func(k string) {
		mu.Lock()
		counts[k]++
		mu.Unlock()
	}
	run := func(name string, fn func() bool) {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for time.Now().Before(deadline) {
				if fn() {
					bump(name)
				}
				time.Sleep(50 * time.Millisecond)
			}
		}()
	}

	// Slow-loris: drip one header byte at a time; the server's
	// ReadHeaderTimeout must cut the connection loose.
	run("slowloris", func() bool {
		c, err := net.DialTimeout("tcp", host, time.Second)
		if err != nil {
			return false
		}
		defer c.Close()
		io.WriteString(c, "POST /v1/commit HTTP/1.1\r\n") //nolint:errcheck
		for _, b := range []byte("Host: h\r\nContent-Length: 100\r\n") {
			if _, err := c.Write([]byte{b}); err != nil {
				return true // server cut us off: the defense worked
			}
			time.Sleep(100 * time.Millisecond)
		}
		return true
	})

	// Mid-request disconnect: promise a body, send half, hang up.
	run("disconnect", func() bool {
		c, err := net.DialTimeout("tcp", host, time.Second)
		if err != nil {
			return false
		}
		io.WriteString(c, "POST /v1/commit HTTP/1.1\r\nHost: h\r\nContent-Type: application/json\r\nContent-Length: 64\r\n\r\n{\"ops\":[{\"op\"") //nolint:errcheck
		c.Close()
		return true
	})

	// Malformed body: valid HTTP, garbage JSON → structured 400.
	run("malformed", func() bool {
		hc := &http.Client{Timeout: 2 * time.Second}
		resp, err := hc.Post(base+"/v1/commit", "application/json",
			strings.NewReader(`{"ops": [{"op": }`))
		if err != nil {
			return false
		}
		io.Copy(io.Discard, resp.Body) //nolint:errcheck
		resp.Body.Close()
		return resp.StatusCode == http.StatusBadRequest
	})

	// Oversized body → 413 without buffering the payload.
	run("oversize", func() bool {
		hc := &http.Client{Timeout: 2 * time.Second}
		big := bytes.Repeat([]byte("x"), 2<<20)
		resp, err := hc.Post(base+"/v1/commit", "application/json", bytes.NewReader(big))
		if err != nil {
			return true // connection reset mid-upload is a valid defense
		}
		io.Copy(io.Discard, resp.Body) //nolint:errcheck
		resp.Body.Close()
		return resp.StatusCode == http.StatusRequestEntityTooLarge
	})

	// Clock-skewed deadline: absolute deadline in the past → immediate
	// structured shed, never admitted.
	run("skew", func() bool {
		hc := &http.Client{Timeout: 2 * time.Second}
		req, _ := http.NewRequest(http.MethodPost, base+"/v1/commit",
			strings.NewReader(`{"ops":[{"op":"add-node","label":"P"}]}`))
		req.Header.Set("Content-Type", "application/json")
		req.Header.Set("X-Deadline-Unix-Ms", "1000") // 1970
		resp, err := hc.Do(req)
		if err != nil {
			return false
		}
		io.Copy(io.Discard, resp.Body) //nolint:errcheck
		resp.Body.Close()
		return resp.StatusCode == http.StatusGatewayTimeout
	})
	return counts
}
