// Command h2tap-loadgen generates the evaluation datasets (§6.2) — the
// LDBC-SNB-like property graph or the Graph500-like RMAT graph — loads them
// into the main graph store, and optionally drives the §6.2 update
// workload against a full H2TAP instance, reporting transactional and
// delta-store metrics.
//
// Usage:
//
//	h2tap-loadgen -kind snb -sf 1 -downscale 10
//	h2tap-loadgen -kind rmat -scale 16
//	h2tap-loadgen -kind snb -sf 1 -queries 10000 -mix mixed -replica dynamic
//
// With -client it instead becomes the network overload/fault harness for
// cmd/h2tap-server: N concurrent connections drive the HTTP API at a
// target rate, reporting p50/p99 commit and analytics latency plus shed
// counts by structured error code; -faults mixes in slow-loris clients,
// mid-request disconnects, oversized/malformed bodies, and clock-skewed
// deadlines:
//
//	h2tap-loadgen -client http://127.0.0.1:8080 -conns 64 -rate 2000 -duration 30s
//	h2tap-loadgen -client http://127.0.0.1:8080 -conns 32 -faults -client-mix mixed
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"h2tap"
	"h2tap/internal/ldbc"
	"h2tap/internal/snapshot"
	"h2tap/internal/workload"
)

func main() {
	var (
		kind      = flag.String("kind", "snb", "dataset kind: snb | rmat")
		sf        = flag.Float64("sf", 1, "SNB scale factor")
		downscale = flag.Int("downscale", 10, "SNB downscale divisor")
		scale     = flag.Int("scale", 14, "RMAT scale (2^scale vertices)")
		seed      = flag.Int64("seed", 1, "random seed")
		queries   = flag.Int("queries", 0, "update queries to run after load (0 = load only)")
		mix       = flag.String("mix", "mixed", "workload: mixed | insert-rel | insert-node | delete-rel | delete-node")
		window    = flag.String("window", "hideg", "update window: lodeg | hideg")
		replica   = flag.String("replica", "static", "replica kind for the analytics pass: static | dynamic")
		analytics = flag.Bool("analytics", true, "run BFS/PageRank after the workload")
		dump      = flag.String("dump", "", "write a JSONL snapshot of the final graph to this file")
		load      = flag.String("load", "", "load the graph from a JSONL snapshot instead of generating")

		client    = flag.String("client", "", "client mode: base URL of a running h2tap-server")
		conns     = flag.Int("conns", 16, "client mode: concurrent connections")
		rate      = flag.Float64("rate", 0, "client mode: total target requests/s (0 = open throttle)")
		duration  = flag.Duration("duration", 10*time.Second, "client mode: run length")
		clientMix = flag.String("client-mix", "commit", "client mode: commit | analytics | mixed")
		faults    = flag.Bool("faults", false, "client mode: inject network faults alongside the load")
		reqTO     = flag.Duration("req-timeout", 10*time.Second, "client mode: per-request client timeout")
		jsonOut   = flag.Bool("json", false, "client mode: emit the report as one JSON line")
	)
	flag.Parse()

	if *client != "" {
		os.Exit(runClient(clientConfig{
			base:     *client,
			conns:    *conns,
			rate:     *rate,
			duration: *duration,
			mix:      *clientMix,
			faults:   *faults,
			timeout:  *reqTO,
			jsonOut:  *jsonOut,
		}))
	}

	opts := h2tap.Options{}
	if *replica == "dynamic" {
		opts.Replica = h2tap.DynamicHash
	}
	db, err := h2tap.Open(opts)
	if err != nil {
		fail(err)
	}
	defer db.Close()

	var ds *ldbc.Dataset
	if *load != "" {
		f, err := os.Open(*load)
		if err != nil {
			fail(err)
		}
		loadStart := time.Now()
		if _, err := snapshot.Read(f, db.Store()); err != nil {
			f.Close()
			fail(err)
		}
		f.Close()
		fmt.Printf("loaded snapshot %s: %d nodes, %d relationships (%v)\n",
			*load, db.Stats().LiveNodes, db.Stats().LiveRels,
			time.Since(loadStart).Round(time.Millisecond))
	} else {
		genStart := time.Now()
		switch *kind {
		case "snb":
			ds = ldbc.GenerateSNB(ldbc.SNBConfig{SF: *sf, Downscale: *downscale, Seed: *seed})
		case "rmat":
			ds = ldbc.GenerateRMAT(ldbc.RMATConfig{Scale: *scale, Seed: *seed})
		default:
			fmt.Fprintf(os.Stderr, "unknown dataset kind %q\n", *kind)
			os.Exit(2)
		}
		fmt.Printf("generated %s dataset: %d nodes, %d edges (%v)\n",
			*kind, ds.NumNodes(), ds.NumEdges(), time.Since(genStart).Round(time.Millisecond))

		loadStart := time.Now()
		if err := db.BulkLoad(ds.Nodes, ds.Edges); err != nil {
			fail(err)
		}
		fmt.Printf("loaded into main graph in %v\n", time.Since(loadStart).Round(time.Millisecond))
	}

	if *queries > 0 {
		if ds == nil || *kind != "snb" {
			fmt.Fprintln(os.Stderr, "the §6.2 workload requires a generated -kind snb graph (Person/Post labels)")
			os.Exit(2)
		}
		wk := workload.HiDeg
		if *window == "lodeg" {
			wk = workload.LoDeg
		}
		win := workload.DegreeWindow(db.Store(), db.SnapshotTS(), ds.Persons, wk, len(ds.Persons)/10)
		g := workload.NewGenerator(win, ds.Posts, *seed)
		var ops []workload.Op
		switch *mix {
		case "mixed":
			ops = g.Mixed(*queries)
		case "insert-rel":
			ops = g.Ops(workload.InsertRel, *queries)
		case "insert-node":
			ops = g.Ops(workload.InsertNode, *queries)
		case "delete-rel":
			ops = g.Ops(workload.DeleteRel, *queries)
		case "delete-node":
			ops = g.Ops(workload.DeleteNode, *queries)
		default:
			fmt.Fprintf(os.Stderr, "unknown mix %q\n", *mix)
			os.Exit(2)
		}
		res := workload.Run(db.Store(), ops)
		fmt.Printf("workload: %d committed, %d aborted, %d skipped in %v (%.0f txn/s)\n",
			res.Committed, res.Aborted, res.Skipped, res.Duration.Round(time.Millisecond),
			float64(res.Committed)/res.Duration.Seconds())
	}

	st := db.Stats()
	fmt.Printf("graph: %d live nodes, %d live relationships\n", st.LiveNodes, st.LiveRels)
	fmt.Printf("delta store: %d records, %s payload, delta mode %v\n",
		st.DeltaRecords, byteStr(st.DeltaBytes), st.DeltaMode)

	if *dump != "" {
		f, err := os.Create(*dump)
		if err != nil {
			fail(err)
		}
		if err := snapshot.Write(f, db.Store(), db.SnapshotTS()); err != nil {
			f.Close()
			fail(err)
		}
		if err := f.Close(); err != nil {
			fail(err)
		}
		st, _ := os.Stat(*dump)
		fmt.Printf("dumped snapshot to %s (%d bytes)\n", *dump, st.Size())
	}

	if *analytics {
		res, err := db.RunAnalytics(h2tap.BFS, 0)
		if err != nil {
			fail(err)
		}
		reach := 0
		for _, l := range res.Levels {
			if l >= 0 {
				reach++
			}
		}
		fmt.Printf("BFS from 0: %d reachable, propagation %v, kernel(sim) %v\n",
			reach, res.Propagation.Total.Total().Round(time.Microsecond),
			time.Duration(res.KernelSim).Round(time.Microsecond))

		pr, err := db.RunAnalytics(h2tap.PageRank, 0)
		if err != nil {
			fail(err)
		}
		best, bestRank := 0, 0.0
		for i, r := range pr.Ranks {
			if r > bestRank {
				best, bestRank = i, r
			}
		}
		fmt.Printf("PageRank: top vertex %d (%.6f), kernel(sim) %v\n",
			best, bestRank, time.Duration(pr.KernelSim).Round(time.Microsecond))
	}
}

func byteStr(n uint64) string {
	switch {
	case n >= 1<<20:
		return fmt.Sprintf("%.2f MiB", float64(n)/(1<<20))
	case n >= 1<<10:
		return fmt.Sprintf("%.2f KiB", float64(n)/(1<<10))
	default:
		return fmt.Sprintf("%d B", n)
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "h2tap-loadgen:", err)
	os.Exit(1)
}
