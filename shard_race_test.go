package h2tap

import (
	"sort"
	"sync"
	"sync/atomic"
	"testing"
)

// TestShardedStitchNeverTearsCrossShardTx hammers a 4-shard cluster with
// concurrent cross-shard transactions — each commits a PAIR of edges a→b and
// b→a between nodes on different shards — while a reader continuously
// stitches composite views. The watermark barrier must never expose a torn
// prefix: in every stitched view, each pair's two edges appear both or
// neither. Run under -race this also exercises the 2PC gate ordering, the
// ghost registry and the replica acquisition paths for data races.
func TestShardedStitchNeverTearsCrossShardTx(t *testing.T) {
	db, err := Open(Options{Shards: 4})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	defer db.Close()
	c := db.Cluster()

	pairs := 96
	if testing.Short() {
		pairs = 24
	}

	// Disjoint endpoint pairs on distinct shards, committed up front.
	// Disjointness keeps the both-or-neither check exact (no alternative
	// paths) and keeps concurrent writers off each other's ghosts.
	type pair struct{ a, b uint64 }
	var ps []pair
	setup, err := db.BeginSharded()
	if err != nil {
		t.Fatalf("BeginSharded: %v", err)
	}
	part := c.Partitioner()
	var pool []uint64
	for len(ps) < pairs {
		g, err := setup.AddNode("N", nil)
		if err != nil {
			t.Fatalf("AddNode: %v", err)
		}
		matched := false
		for i, o := range pool {
			if part.ShardOf(o) != part.ShardOf(g) {
				ps = append(ps, pair{a: o, b: g})
				pool = append(pool[:i], pool[i+1:]...)
				matched = true
				break
			}
		}
		if !matched {
			pool = append(pool, g)
		}
	}
	if err := setup.Commit(); err != nil {
		t.Fatalf("setup Commit: %v", err)
	}

	var committed atomic.Int64
	var wg sync.WaitGroup
	workers := 4
	per := pairs / workers
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := w * per; i < (w+1)*per; i++ {
				tx, err := db.BeginSharded()
				if err != nil {
					t.Errorf("BeginSharded: %v", err)
					return
				}
				if _, err := tx.AddRel(ps[i].a, ps[i].b, "e", 1); err != nil {
					t.Errorf("AddRel: %v", err)
					tx.Abort()
					return
				}
				if _, err := tx.AddRel(ps[i].b, ps[i].a, "e", 1); err != nil {
					t.Errorf("AddRel: %v", err)
					tx.Abort()
					return
				}
				if err := tx.Commit(); err != nil {
					t.Errorf("Commit: %v", err)
					return
				}
				committed.Add(1)
			}
		}(w)
	}

	hasEdge := func(st *StitchResult, idx map[uint64]int, from, to uint64) bool {
		fi, ok := idx[from]
		if !ok {
			return false
		}
		ti, ok := idx[to]
		if !ok {
			return false
		}
		col, _ := st.CSR.Row(uint64(fi))
		j := sort.Search(len(col), func(k int) bool { return col[k] >= uint64(ti) })
		return j < len(col) && col[j] == uint64(ti)
	}
	check := func() {
		st, err := db.RunAnalyticsStitched(WCC, 0)
		if err != nil {
			t.Errorf("stitch: %v", err)
			return
		}
		idx := make(map[uint64]int, len(st.GlobalIDs))
		for i, g := range st.GlobalIDs {
			idx[g] = i
		}
		for _, p := range ps {
			ab := hasEdge(st, idx, p.a, p.b)
			ba := hasEdge(st, idx, p.b, p.a)
			if ab != ba {
				t.Errorf("torn composite: edge %d→%d visible=%v but %d→%d visible=%v (watermark %v)",
					p.a, p.b, ab, p.b, p.a, ba, st.Watermark)
			}
		}
	}

	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	for {
		select {
		case <-done:
			// Final stitch after quiescence must show every pair completely.
			st, err := db.RunAnalyticsStitched(WCC, 0)
			if err != nil {
				t.Fatalf("final stitch: %v", err)
			}
			if got, want := st.Edges, int64(2*committed.Load()); got != want {
				t.Fatalf("final composite has %d edges, want %d", got, want)
			}
			check()
			return
		default:
			check()
		}
	}
}
