package h2tap

import (
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"h2tap/internal/graph"
	"h2tap/internal/vfs"
	"h2tap/internal/wal"
)

// benchFsyncLatency pins the simulated flush latency for the durable-commit
// benchmarks, so batch formation is observable regardless of how fast the
// host's page cache (or tmpfs) acknowledges a real fsync.
const benchFsyncLatency = 400 * time.Microsecond

// durableCommitRate measures durable single-node commits per second with
// `committers` concurrent goroutines against a WAL opened with the given
// options, committing `total` transactions.
func durableCommitRate(tb testing.TB, committers, total int, opts wal.Options) (float64, wal.Stats) {
	tb.Helper()
	dir, err := os.MkdirTemp("", "h2tap-walbench")
	if err != nil {
		tb.Fatal(err)
	}
	defer os.RemoveAll(dir)
	l, err := wal.Open(filepath.Join(dir, "graph.wal"), opts)
	if err != nil {
		tb.Fatal(err)
	}
	defer l.Close()
	s := graph.NewStore()
	s.AddOpLogger(l)

	per := total / committers
	if per == 0 {
		per = 1
	}
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < committers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				tx := s.Begin()
				if _, err := tx.AddNode("B", nil); err != nil {
					tb.Error(err)
					return
				}
				if err := tx.Commit(); err != nil {
					tb.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()
	return float64(per*committers) / time.Since(start).Seconds(), l.Stats()
}

// BenchmarkDurableCommitScaling is the group-commit scaling series: durable
// (SyncEveryCommit) commit throughput vs committer count, grouped vs the
// serialized MaxBatch=1 baseline, plus the no-sync path. Flush latency is
// pinned (see benchFsyncLatency), so ops/sec compares across machines: the
// serialized series flat-lines near 1/latency while the grouped series
// scales with committers.
func BenchmarkDurableCommitScaling(b *testing.B) {
	for _, committers := range []int{1, 2, 4, 8, 16} {
		for _, mode := range []struct {
			name string
			opts wal.Options
		}{
			{"serialized-sync", wal.Options{
				SyncEveryCommit: true,
				GroupCommit:     wal.GroupCommit{MaxBatch: 1},
				FS:              vfs.SlowSync(vfs.OS(), benchFsyncLatency),
			}},
			{"grouped-sync", wal.Options{
				SyncEveryCommit: true,
				FS:              vfs.SlowSync(vfs.OS(), benchFsyncLatency),
			}},
			{"grouped-nosync", wal.Options{
				FS: vfs.SlowSync(vfs.OS(), benchFsyncLatency),
			}},
		} {
			b.Run(fmt.Sprintf("%s/committers=%d", mode.name, committers), func(b *testing.B) {
				rate, st := durableCommitRate(b, committers, b.N, mode.opts)
				b.ReportMetric(rate, "commits/s")
				b.ReportMetric(float64(st.MaxBatch), "max-batch")
			})
		}
	}
}

// BenchmarkCommitAllocs is the zero-allocation guard's measurement: a
// single-node transaction against a volatile store. The commit hot path
// (delta builder, op log, publication hooks, version storage) is pooled;
// the remaining allocations per op are the Tx handle itself (deliberate —
// stale handles must see a terminal transaction, never a recycled one)
// plus amortized arena/pool refills. TestVerifyBenchCommitAllocs enforces
// the budget in `make verify-bench`.
func BenchmarkCommitAllocs(b *testing.B) {
	s := graph.NewStore()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tx := s.Begin()
		if _, err := tx.AddNode("A", nil); err != nil {
			b.Fatal(err)
		}
		if err := tx.Commit(); err != nil {
			b.Fatal(err)
		}
	}
}

// commitAllocBudget is the allocs/op ceiling for BenchmarkCommitAllocs'
// workload: 1 deliberate allocation (the Tx handle) plus headroom for
// sync.Pool misses after a GC and the 1/32-amortized version-arena refill.
// Growth past this means something on the commit path started allocating
// again — builder, ops slice, hooks, delta, or encode buffers.
const commitAllocBudget = 4.0

// TestVerifyBenchCommitAllocs is the allocs/op regression guard behind
// `make verify-bench`.
func TestVerifyBenchCommitAllocs(t *testing.T) {
	if os.Getenv("H2TAP_VERIFY_BENCH") == "" {
		t.Skip("set H2TAP_VERIFY_BENCH=1 to run the bench regression guard")
	}
	s := graph.NewStore()
	commitOne := func() {
		tx := s.Begin()
		if _, err := tx.AddNode("A", nil); err != nil {
			t.Fatal(err)
		}
		if err := tx.Commit(); err != nil {
			t.Fatal(err)
		}
	}
	commitOne() // warm pools and label/dict state
	allocs := testing.AllocsPerRun(500, commitOne)
	t.Logf("commit path: %.2f allocs/op (budget %.1f)", allocs, commitAllocBudget)
	if allocs > commitAllocBudget {
		t.Fatalf("commit path allocates %.2f/op, budget is %.1f — pooled state regressed",
			allocs, commitAllocBudget)
	}
}

// TestVerifyBenchGroupCommit is the group-commit scaling guard behind
// `make verify-bench`: with 8 committers and a pinned 1ms flush latency,
// grouped durable commits must beat the serialized (MaxBatch=1) baseline
// by at least 3×. The latency pin makes the ratio hardware-independent —
// the serialized path is bounded by one flush per commit no matter the
// host, while group commit shares each flush across whoever arrived during
// the previous one.
func TestVerifyBenchGroupCommit(t *testing.T) {
	if os.Getenv("H2TAP_VERIFY_BENCH") == "" {
		t.Skip("set H2TAP_VERIFY_BENCH=1 to run the bench regression guard")
	}
	const committers, total = 8, 400
	fs := vfs.SlowSync(vfs.OS(), time.Millisecond)
	best := func(opts wal.Options) float64 {
		b := 0.0
		for rep := 0; rep < 3; rep++ {
			rate, _ := durableCommitRate(t, committers, total, opts)
			if rate > b {
				b = rate
			}
		}
		return b
	}
	serialized := best(wal.Options{
		SyncEveryCommit: true,
		GroupCommit:     wal.GroupCommit{MaxBatch: 1},
		FS:              fs,
	})
	grouped := best(wal.Options{SyncEveryCommit: true, FS: fs})
	speedup := grouped / serialized
	t.Logf("durable commits, %d committers: serialized=%.0f/s grouped=%.0f/s speedup=%.2f×",
		committers, serialized, grouped, speedup)
	if speedup < 3.0 {
		t.Fatalf("group commit speedup %.2f× < 3× at %d committers (serialized %.0f/s, grouped %.0f/s)",
			speedup, committers, serialized, grouped)
	}
}
