package h2tap

import (
	"os"
	"testing"
	"time"

	"h2tap/internal/csr"
	"h2tap/internal/deltastore"
)

// TestVerifyBenchSpeedup is the bench regression guard behind `make
// verify-bench`: serial vs 8-worker scan+merge on a 500k-delta batch. It
// fails when the parallel pipeline is slower than serial beyond noise. The
// 0.8 floor keeps single-core CI containers green — there every worker
// count degenerates to the serial path plus goroutine overhead — while on
// multi-core hardware the expected speedup is well above 1 (≥2× at 8
// workers on an 8-core host), so a real regression still trips the guard.
func TestVerifyBenchSpeedup(t *testing.T) {
	if os.Getenv("H2TAP_VERIFY_BENCH") == "" {
		t.Skip("set H2TAP_VERIFY_BENCH=1 to run the bench regression guard")
	}
	const batchN = 500_000
	s, _, ts := benchGraph(t, 1, 25)
	base := csr.Build(s, ts)

	measure := func(workers int) time.Duration {
		best := time.Duration(1 << 62)
		for rep := 0; rep < 3; rep++ {
			fe := deltastore.NewVolatile()
			feedSynthetic(fe, batchN, s.NumNodeSlots())
			t0 := time.Now()
			batch := fe.ScanWorkers(1<<40, workers)
			merged, _ := csr.MergeWorkers(base, batch, workers)
			d := time.Since(t0)
			_ = merged
			if d < best {
				best = d
			}
		}
		return best
	}
	serial := measure(1)
	par := measure(8)
	speedup := float64(serial) / float64(par)
	t.Logf("scan+merge on %d deltas: serial=%v 8-workers=%v speedup=%.2f×", batchN, serial, par, speedup)
	if speedup < 0.8 {
		t.Fatalf("parallel propagation regressed: 8-worker scan+merge speedup %.2f× < 0.8× (serial %v, parallel %v)",
			speedup, serial, par)
	}
}

// TestVerifyBenchShardFastPath guards the sharded engine's single-participant
// commit fast path (`make verify-bench`): a transaction whose writes all land
// in one shard must commit WITHOUT the two-phase protocol — no prepare
// record, no coordinator append, no distributed transaction ID. If routing
// ever sends single-shard transactions through 2PC, commit latency jumps to
// the cross-shard regime and the generous 25× ceiling trips. Volatile
// cluster, so the numbers measure pure protocol overhead, not fsync.
func TestVerifyBenchShardFastPath(t *testing.T) {
	if os.Getenv("H2TAP_VERIFY_BENCH") == "" {
		t.Skip("set H2TAP_VERIFY_BENCH=1 to run the bench regression guard")
	}
	const txN = 2000

	single, err := Open(Options{})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	defer single.Close()
	sharded, err := Open(Options{Shards: 4})
	if err != nil {
		t.Fatalf("Open sharded: %v", err)
	}
	defer sharded.Close()

	measure := func(commit func() error) time.Duration {
		best := time.Duration(1 << 62)
		for rep := 0; rep < 3; rep++ {
			t0 := time.Now()
			for i := 0; i < txN; i++ {
				if err := commit(); err != nil {
					t.Fatalf("commit: %v", err)
				}
			}
			if d := time.Since(t0); d < best {
				best = d
			}
		}
		return best
	}

	base := measure(func() error {
		tx := single.Begin()
		if _, err := tx.AddNode("V", nil); err != nil {
			return err
		}
		return tx.Commit()
	})
	// Single-participant sharded transactions: one AddNode lands in exactly
	// one shard, so Commit must take the fast path.
	fast := measure(func() error {
		tx, err := sharded.BeginSharded()
		if err != nil {
			return err
		}
		if _, err := tx.AddNode("V", nil); err != nil {
			return err
		}
		return tx.Commit()
	})

	ratio := float64(fast) / float64(base)
	t.Logf("%d single-op txs: unsharded=%v sharded-fast-path=%v ratio=%.2f×", txN, base, fast, ratio)
	if ratio > 25 {
		t.Fatalf("sharded single-participant commit fast path regressed: %.2f× unsharded (want <= 25×; 2PC-level cost suggests routing broke)", ratio)
	}
	if n := sharded.Cluster().CrossTxLive(); n != 0 {
		t.Fatalf("single-participant commits registered %d cross-shard transactions, want 0", n)
	}
}
