GO ?= go

.PHONY: verify build vet test race crash crash-full bench-record verify-bench clean

# verify is the CI entry point: static checks, the full test suite, race
# detection on the concurrency-heavy packages, and a short-budget
# crash-point enumeration (an evenly spaced sample of injected crashes; run
# crash-full for every point).
verify: vet build test race crash

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# race runs the entire suite under the race detector, including the
# propagation stress tests (committers racing Propagate cycles).
race:
	$(GO) test -race ./...

# bench-record stores the propagation benchmark series (Fig 10 kernels plus
# the parallel-merge ablation) for comparison across changes.
bench-record:
	$(GO) test . -run '^$$' -bench 'BenchmarkFig10|BenchmarkAblationParallelMerge' -benchtime 3x | tee bench_record.txt

# verify-bench fails if the 8-worker scan+merge pipeline is slower than the
# serial path beyond noise (see benchguard_test.go for the threshold).
verify-bench:
	H2TAP_VERIFY_BENCH=1 $(GO) test . -run TestVerifyBenchSpeedup -v

crash:
	$(GO) test -short ./internal/crashtest

crash-full:
	$(GO) test ./internal/crashtest

clean:
	$(GO) clean ./...
