GO ?= go

.PHONY: verify build vet test race crash crash-full clean

# verify is the CI entry point: static checks, the full test suite, race
# detection on the concurrency-heavy packages, and a short-budget
# crash-point enumeration (an evenly spaced sample of injected crashes; run
# crash-full for every point).
verify: vet build test race crash

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./internal/deltastore ./internal/htap ./internal/mvto ./internal/wal

crash:
	$(GO) test -short ./internal/crashtest

crash-full:
	$(GO) test ./internal/crashtest

clean:
	$(GO) clean ./...
