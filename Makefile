GO ?= go

.PHONY: verify build vet test race crash crash-full fuzz-smoke fault-soak shard-soak obs-smoke server-smoke reqtrace-soak bench-record verify-bench clean

# verify is the CI entry point: static checks, the full test suite, race
# detection on the concurrency-heavy packages, a short-budget crash-point
# enumeration (an evenly spaced sample of injected crashes; run crash-full
# for every point), the live observability-endpoint smoke, and the network
# service-layer smoke.
verify: vet build test race crash obs-smoke server-smoke

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# race runs the suite under the race detector, including the propagation
# stress tests (committers racing Propagate cycles), the sharded
# stitch-tearing test, and a dedicated pass over the WAL group-commit
# leader/follower protocol (concurrent committers sharing batches, racing
# rotation and injected failures). Crash enumeration runs with the -short
# budget here: its full sweeps (single-domain + 2PC) are minutes-long even
# without the race detector and have their own targets (crash-full).
race:
	$(GO) test -race -short ./internal/crashtest
	$(GO) test -race -run 'TestGroupCommit' -count 4 ./internal/wal
	$(GO) test -race $$($(GO) list ./... | grep -v internal/crashtest)

# bench-record stores the propagation benchmark series (Fig 10 kernels plus
# the parallel-merge ablation and the shard-scaling series), the durable
# group-commit scaling series, and the commit allocs/op reading for
# comparison across changes.
bench-record:
	$(GO) test . -run '^$$' -bench 'BenchmarkFig10|BenchmarkAblationParallelMerge|BenchmarkShardScaling' -benchtime 3x | tee bench_record.txt
	$(GO) test . -run '^$$' -bench 'BenchmarkDurableCommitScaling|BenchmarkCommitAllocs' -benchtime 100x | tee -a bench_record.txt

# verify-bench fails if the 8-worker scan+merge pipeline is slower than the
# serial path beyond noise, if the sharded single-participant commit fast
# path regresses toward 2PC cost, if WAL group commit stops scaling durable
# commits (≥3× over the serialized baseline at 8 committers), or if the
# commit hot path allocates past its budget (see benchguard_test.go and
# walbench_test.go for thresholds).
verify-bench:
	H2TAP_VERIFY_BENCH=1 $(GO) test . -run 'TestVerifyBench' -v

crash:
	$(GO) test -short ./internal/crashtest

crash-full:
	$(GO) test ./internal/crashtest

# fuzz-smoke runs each fuzz target for a short budget — enough to catch
# regressions in the parsers and grouping logic without a dedicated fuzz
# farm.
FUZZTIME ?= 10s
fuzz-smoke:
	$(GO) test -run '^$$' -fuzz FuzzDecodeCommit -fuzztime $(FUZZTIME) ./internal/wal
	$(GO) test -run '^$$' -fuzz FuzzCombineReplay -fuzztime $(FUZZTIME) ./internal/delta
	$(GO) test -run '^$$' -fuzz FuzzMerge -fuzztime $(FUZZTIME) ./internal/csr
	$(GO) test -run '^$$' -fuzz FuzzScanGrouping -fuzztime $(FUZZTIME) ./internal/deltastore

# obs-smoke boots the bench with the -obs HTTP listener and curls /metrics,
# /healthz, /debug/trace and /debug/pprof mid-run, asserting the key metric
# families are live (see scripts/obs-smoke.sh).
obs-smoke:
	./scripts/obs-smoke.sh

# server-smoke boots h2tap-server on an ephemeral port, drives faulted
# client load through h2tap-loadgen -client, SIGTERMs it and asserts a
# clean graceful drain with the committed state durable across a restart
# (see scripts/server-smoke.sh).
server-smoke:
	./scripts/server-smoke.sh

# reqtrace-soak races the request tracer for real: a -race build of
# h2tap-server with tracing at full sampling serves concurrent loadgen
# traffic while /debug/requests and /debug/trace readers hammer the
# retention rings (see scripts/reqtrace-soak.sh).
reqtrace-soak:
	./scripts/reqtrace-soak.sh

# fault-soak hammers propagation with randomized GPU faults through the
# bench CLI (see internal/crashtest gpufaults for the invariants checked).
SOAK_ROUNDS ?= 500
fault-soak:
	$(GO) run ./cmd/h2tap-bench -faults $(SOAK_ROUNDS)

# shard-soak runs the randomized shard-fault storm long-form: SHARD_SOAK_SECS
# seconds per seed of concurrent traffic with online shard/coordinator
# failure and recovery, asserting the ledger, 2PC atomicity and durable
# restart convergence (see internal/crashtest soak.go for the invariants).
SHARD_SOAK_SECS ?= 60
shard-soak:
	H2TAP_SOAK_SECS=$(SHARD_SOAK_SECS) $(GO) run ./cmd/h2tap-bench -exp shardfaults

clean:
	$(GO) clean ./...
