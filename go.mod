module h2tap

go 1.22
