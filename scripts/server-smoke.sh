#!/usr/bin/env bash
# server-smoke.sh — end-to-end smoke test of the network service layer:
# builds h2tap-server and h2tap-loadgen, boots the server on an ephemeral
# port with a persist dir, drives two seconds of client load with network
# faults injected, checks /healthz and a one-shot commit, then SIGTERMs the
# server and asserts a clean graceful drain — and that the drained state is
# durable across a restart.
set -euo pipefail

cd "$(dirname "$0")/.."

tmp=$(mktemp -d)
cleanup() {
  [ -n "${pid:-}" ] && kill "$pid" 2>/dev/null || true
  [ -n "${pid2:-}" ] && kill "$pid2" 2>/dev/null || true
  rm -rf "$tmp"
}
trap cleanup EXIT

go build -o "$tmp/h2tap-server" ./cmd/h2tap-server
go build -o "$tmp/h2tap-loadgen" ./cmd/h2tap-loadgen

server_args=(-addr 127.0.0.1:0 -persist "$tmp/data"
  -pool-size $((32 * 1024 * 1024)) -drain-timeout 10s)

wait_addr() { # <stderr-file> <pid>
  local a=""
  for _ in $(seq 1 100); do
    a=$(sed -n 's/^server: listening on //p' "$1" | head -1)
    [ -n "$a" ] && { echo "$a"; return 0; }
    kill -0 "$2" 2>/dev/null || { echo "server-smoke: server exited early" >&2; cat "$1" >&2; return 1; }
    sleep 0.1
  done
  echo "server-smoke: listener never came up" >&2; cat "$1" >&2; return 1
}

"$tmp/h2tap-server" "${server_args[@]}" >/dev/null 2>"$tmp/stderr" &
pid=$!
addr=$(wait_addr "$tmp/stderr" "$pid")
echo "server-smoke: serving on http://$addr"

# Probe: /healthz must answer 200 "ok: ..." on a fresh database.
code=$(curl -s -o "$tmp/health" -w '%{http_code}' "http://$addr/healthz")
[ "$code" = 200 ] && grep -q '^ok: ' "$tmp/health" || {
  echo "server-smoke: bad initial /healthz ($code)"; cat "$tmp/health"; exit 1; }

# One interactive transaction round trip: begin → apply → commit, and the
# commit must surface an MVTO timestamp.
txid=$(curl -sf -X POST "http://$addr/v1/tx/begin" | sed -n 's/.*"tx":"\([^"]*\)".*/\1/p')
[ -n "$txid" ] || { echo "server-smoke: tx begin gave no tx id"; exit 1; }
curl -sf -X POST "http://$addr/v1/tx/apply" \
  -d "{\"tx\":\"$txid\",\"ops\":[{\"op\":\"add-node\",\"label\":\"Smoke\",\"props\":{\"s\":1}}]}" >/dev/null
commit=$(curl -sf -X POST "http://$addr/v1/tx/commit" -d "{\"tx\":\"$txid\"}")
echo "$commit" | grep -q '"ts":[1-9]' || {
  echo "server-smoke: commit carried no timestamp: $commit"; exit 1; }

# Two seconds of concurrent load with the fault layer on: slow-loris,
# mid-request disconnects, malformed and oversized bodies, skewed
# deadlines. The client exits non-zero if nothing was accepted.
"$tmp/h2tap-loadgen" -client "http://$addr" -conns 8 -rate 400 \
  -duration 2s -client-mix mixed -faults -json >"$tmp/report.json"
grep -q '"accepted":[1-9]' "$tmp/report.json" || {
  echo "server-smoke: no accepted requests"; cat "$tmp/report.json"; exit 1; }
echo "server-smoke: client report: $(cat "$tmp/report.json")"

# The server must still be healthy after the fault storm.
code=$(curl -s -o /dev/null -w '%{http_code}' "http://$addr/healthz")
[ "$code" = 200 ] || { echo "server-smoke: /healthz=$code after faults"; exit 1; }

# Record the committed state, then SIGTERM: graceful drain must exit 0
# and log the clean-drain line.
nodes=$(curl -sf "http://$addr/v1/stats" | sed -n 's/.*"LiveNodes":\([0-9]*\).*/\1/p')
[ -n "$nodes" ] && [ "$nodes" -gt 0 ] || { echo "server-smoke: no live nodes before drain"; exit 1; }
kill -TERM "$pid"
rc=0; wait "$pid" || rc=$?
[ "$rc" = 0 ] || { echo "server-smoke: server exited $rc on SIGTERM"; cat "$tmp/stderr"; exit 1; }
grep -q 'server: clean drain in' "$tmp/stderr" || {
  echo "server-smoke: no clean-drain log"; cat "$tmp/stderr"; exit 1; }
pid=""

# Restart on the same persist dir: every drained commit must be recovered.
"$tmp/h2tap-server" "${server_args[@]}" >/dev/null 2>"$tmp/stderr2" &
pid2=$!
addr2=$(wait_addr "$tmp/stderr2" "$pid2")
nodes2=$(curl -sf "http://$addr2/v1/stats" | sed -n 's/.*"LiveNodes":\([0-9]*\).*/\1/p')
[ "$nodes2" = "$nodes" ] || {
  echo "server-smoke: recovered $nodes2 nodes, drained with $nodes"; exit 1; }
kill -TERM "$pid2"; wait "$pid2" || true
pid2=""

echo "server-smoke: ok (healthz, tx round trip, faulted load, clean drain, $nodes nodes durable)"
