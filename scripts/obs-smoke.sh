#!/usr/bin/env bash
# obs-smoke.sh — end-to-end smoke test of the live observability surface:
# builds h2tap-bench, runs the freshness experiment with the -obs listener
# on an ephemeral port, scrapes /metrics, /healthz, /debug/trace and
# /debug/pprof mid-run, and asserts the key metric families are present and
# that at least one propagation cycle was counted.
set -euo pipefail

cd "$(dirname "$0")/.."

tmp=$(mktemp -d)
cleanup() {
  [ -n "${pid:-}" ] && kill "$pid" 2>/dev/null || true
  rm -rf "$tmp"
}
trap cleanup EXIT

go build -o "$tmp/h2tap-bench" ./cmd/h2tap-bench

"$tmp/h2tap-bench" -exp freshness -obs 127.0.0.1:0 -obs-linger 120s \
  >/dev/null 2>"$tmp/stderr" &
pid=$!

# The bench prints "obs: listening on host:port" to stderr once bound.
addr=""
for _ in $(seq 1 100); do
  addr=$(sed -n 's/^obs: listening on //p' "$tmp/stderr" | head -1)
  [ -n "$addr" ] && break
  kill -0 "$pid" 2>/dev/null || { echo "obs-smoke: bench exited early"; cat "$tmp/stderr"; exit 1; }
  sleep 0.1
done
[ -n "$addr" ] || { echo "obs-smoke: listener never came up"; cat "$tmp/stderr"; exit 1; }
echo "obs-smoke: scraping http://$addr"

# Poll /metrics until a propagation cycle has been counted (the experiment
# needs a moment to reach its first Propagate).
cycled=""
for _ in $(seq 1 300); do
  curl -sf "http://$addr/metrics" >"$tmp/metrics" || true
  if grep -E 'h2tap_propagation_cycles_total\{result="ok"\} [1-9]' "$tmp/metrics" >/dev/null; then
    cycled=1
    break
  fi
  sleep 0.2
done
[ -n "$cycled" ] || { echo "obs-smoke: no propagation cycle observed"; cat "$tmp/metrics"; exit 1; }

# Key metric families. Histograms append the 'le' label LAST, so bucket
# patterns anchor on the leading labels only.
while IFS= read -r family; do
  grep -qF "$family" "$tmp/metrics" || {
    echo "obs-smoke: missing family: $family"
    exit 1
  }
done <<'EOF'
h2tap_commit_seconds_count
h2tap_delta_appends_total
h2tap_delta_depth
h2tap_propagation_phase_seconds_bucket{phase="scan"
h2tap_propagation_total_seconds_count
h2tap_propagation_retries_total
h2tap_propagation_rebuilds_total{cause="fallback"}
h2tap_health_state
h2tap_health_transitions_total{to="degraded"}
h2tap_staleness_pending_records
h2tap_costmodel_rel_error{model="scan"}
h2tap_costmodel_rel_error{model="transfer"}
h2tap_costmodel_predictions_total{model="rebuild"}
h2tap_gpu_ops_total{op="
h2tap_gpu_bytes_total{dir="h2d"}
h2tap_build_info
h2tap_uptime_seconds
h2tap_goroutines
EOF

# /healthz answers 200 (healthy) or 503 (degraded) with a detail line.
code=$(curl -s -o "$tmp/health" -w '%{http_code}' "http://$addr/healthz")
case "$code" in
  200) grep -q '^ok: ' "$tmp/health" || { echo "obs-smoke: bad healthz body"; cat "$tmp/health"; exit 1; } ;;
  503) grep -q '^degraded: ' "$tmp/health" || { echo "obs-smoke: bad healthz body"; cat "$tmp/health"; exit 1; } ;;
  *) echo "obs-smoke: /healthz returned $code"; exit 1 ;;
esac

# /debug/trace returns Chrome trace-event JSON with at least one cycle.
curl -sf "http://$addr/debug/trace?n=4" >"$tmp/trace"
grep -q '"traceEvents"' "$tmp/trace" || { echo "obs-smoke: bad trace envelope"; exit 1; }
grep -q '"name": "propagation"' "$tmp/trace" || { echo "obs-smoke: no cycle in trace"; exit 1; }

# Structural validation of the Perfetto export: the envelope must parse as
# JSON and every trace event must carry the complete-event fields a viewer
# needs (name, ph=X, ts/dur, pid/tid). Falls back to the grep checks above
# when no python3 is available.
if command -v python3 >/dev/null 2>&1; then
  python3 - "$tmp/trace" <<'PYEOF' || { echo "obs-smoke: Perfetto export failed structural validation"; exit 1; }
import json, sys
with open(sys.argv[1]) as f:
    doc = json.load(f)
events = doc["traceEvents"]
assert isinstance(events, list) and events, "empty traceEvents"
for ev in events:
    for key in ("name", "cat", "ph", "ts", "dur", "pid", "tid"):
        assert key in ev, f"event missing {key}: {ev}"
    assert ev["ph"] == "X", f"unexpected phase {ev['ph']}"
    assert ev["ts"] >= 0 and ev["dur"] >= 0, f"negative time: {ev}"
PYEOF
fi

# /debug/requests serves the request-trace retention rings as JSON. The
# bench drives no HTTP API traffic, so the rings are empty here — the smoke
# asserts the endpoint is live and structurally sound.
curl -sf "http://$addr/debug/requests" >"$tmp/requests"
for key in '"active"' '"recent"' '"slow"'; do
  grep -q "$key" "$tmp/requests" || {
    echo "obs-smoke: /debug/requests missing $key"; cat "$tmp/requests"; exit 1; }
done

# /debug/pprof is live.
curl -sf "http://$addr/debug/pprof/" >/dev/null || { echo "obs-smoke: pprof index unreachable"; exit 1; }

kill "$pid" 2>/dev/null || true
echo "obs-smoke: ok (metrics, healthz=$code, trace, requests, pprof)"
