#!/usr/bin/env bash
# reqtrace-soak.sh — race-detector soak of the request-path tracer: builds
# h2tap-server with -race, boots it with tracing at full sampling and a low
# slow threshold, drives concurrent loadgen client traffic while hammering
# /debug/requests and the merged /debug/trace export from the side (the
# reader/writer interleaving the ring is designed for), then asserts traces
# were retained with the write-path spans present and SIGTERMs into a clean
# drain. Any data race aborts the server and fails the soak.
set -euo pipefail

cd "$(dirname "$0")/.."

DURATION=${REQTRACE_SOAK_DURATION:-5s}

tmp=$(mktemp -d)
cleanup() {
  [ -n "${pid:-}" ] && kill "$pid" 2>/dev/null || true
  rm -rf "$tmp"
}
trap cleanup EXIT

go build -race -o "$tmp/h2tap-server" ./cmd/h2tap-server
go build -o "$tmp/h2tap-loadgen" ./cmd/h2tap-loadgen

"$tmp/h2tap-server" -addr 127.0.0.1:0 -persist "$tmp/data" \
  -pool-size $((32 * 1024 * 1024)) -sync-wal \
  -trace-sample 1 -trace-slow 1ms >/dev/null 2>"$tmp/stderr" &
pid=$!

addr=""
for _ in $(seq 1 100); do
  addr=$(sed -n 's/^server: listening on //p' "$tmp/stderr" | head -1)
  [ -n "$addr" ] && break
  kill -0 "$pid" 2>/dev/null || { echo "reqtrace-soak: server exited early"; cat "$tmp/stderr"; exit 1; }
  sleep 0.1
done
[ -n "$addr" ] || { echo "reqtrace-soak: listener never came up"; cat "$tmp/stderr"; exit 1; }
echo "reqtrace-soak: serving on http://$addr (race detector on, sampling 1/1)"

# Concurrent /debug readers racing the traced request writers.
( while kill -0 "$pid" 2>/dev/null; do
    curl -sf "http://$addr/debug/requests" >/dev/null 2>&1 || true
    curl -sf "http://$addr/debug/trace" >/dev/null 2>&1 || true
  done ) &
reader=$!

"$tmp/h2tap-loadgen" -client "http://$addr" -conns 16 -rate 800 \
  -duration "$DURATION" -client-mix mixed -json >"$tmp/report.json"
kill "$reader" 2>/dev/null || true
wait "$reader" 2>/dev/null || true

grep -q '"accepted":[1-9]' "$tmp/report.json" || {
  echo "reqtrace-soak: no accepted requests"; cat "$tmp/report.json"; exit 1; }

# Every request was traced: the retention rings must hold finished commits
# with the WAL breakdown attached (sync-wal guarantees fsync spans).
curl -sf "http://$addr/debug/requests" >"$tmp/requests"
grep -q '"name": "commit"' "$tmp/requests" || {
  echo "reqtrace-soak: no commit traces retained"; head -c 2000 "$tmp/requests"; exit 1; }
grep -q '"wal.fsync"' "$tmp/requests" || {
  echo "reqtrace-soak: traces missing wal.fsync spans"; head -c 2000 "$tmp/requests"; exit 1; }

# A clean SIGTERM drain proves no race report aborted the process.
kill -TERM "$pid"
rc=0; wait "$pid" || rc=$?
[ "$rc" = 0 ] || { echo "reqtrace-soak: server exited $rc"; cat "$tmp/stderr"; exit 1; }
grep -q 'WARNING: DATA RACE' "$tmp/stderr" && {
  echo "reqtrace-soak: data race detected"; cat "$tmp/stderr"; exit 1; }
pid=""

echo "reqtrace-soak: ok ($(sed -n 's/.*"accepted":\([0-9]*\).*/\1/p' "$tmp/report.json") traced requests, no races)"
