package h2tap

import (
	"math"
	"math/rand"
	"testing"
)

// The differential suite drives identical randomized logical workloads into
// a single-domain database and sharded ones (N ∈ {2, 4, 8}) and requires the
// stitched cross-shard analytics to equal the single-domain results at the
// same logical content: same vertex-slot count, exact BFS levels, SSSP and
// PageRank within float tolerance, identical WCC partition structure. Node
// and relationship IDs differ between configurations (sharded IDs encode
// their placement), so everything is compared through logical handles.

// rwTx is the operation surface shared by *Tx and *ClusterTx.
type rwTx interface {
	AddNode(label string, props map[string]Value) (uint64, error)
	AddRel(src, dst uint64, label string, weight float64) (uint64, error)
	DeleteRel(rel uint64) error
	DeleteNode(node uint64) error
	SetNodeProp(node uint64, key string, val Value) error
	Commit() error
	Abort() error
}

// diffTarget is one database under differential test plus its logical→actual
// ID maps.
type diffTarget struct {
	db    *DB
	nodes map[int]uint64
	rels  map[int]uint64
}

func (d *diffTarget) begin(t *testing.T) rwTx {
	t.Helper()
	if d.db.Cluster() != nil {
		tx, err := d.db.BeginSharded()
		if err != nil {
			t.Fatalf("BeginSharded: %v", err)
		}
		return tx
	}
	return d.db.Begin()
}

// logicalOp is one generated operation in logical-handle space.
type logicalOp struct {
	kind     string // "addnode", "addrel", "delrel", "delnode", "setprop"
	node     int    // addnode (new handle), delnode, setprop
	rel      int    // addrel (new handle), delrel
	src, dst int    // addrel
}

// diffModel is the logical graph the generator draws valid operations from.
type diffModel struct {
	nextNode, nextRel int
	liveNodes         map[int]bool
	liveRels          map[int][2]int // rel handle -> (src, dst) handles
}

func (m *diffModel) randLiveNode(rng *rand.Rand) int {
	keys := make([]int, 0, len(m.liveNodes))
	for k := range m.liveNodes {
		keys = append(keys, k)
	}
	if len(keys) == 0 {
		return -1
	}
	// Deterministic order before sampling: map iteration must not leak into
	// the generated workload.
	sortInts(keys)
	return keys[rng.Intn(len(keys))]
}

func sortInts(a []int) {
	for i := 1; i < len(a); i++ {
		for j := i; j > 0 && a[j] < a[j-1]; j-- {
			a[j], a[j-1] = a[j-1], a[j]
		}
	}
}

func (m *diffModel) randLiveRel(rng *rand.Rand) int {
	keys := make([]int, 0, len(m.liveRels))
	for k := range m.liveRels {
		keys = append(keys, k)
	}
	if len(keys) == 0 {
		return -1
	}
	sortInts(keys)
	return keys[rng.Intn(len(keys))]
}

// genTx generates one transaction's operations, mutating the model as it
// goes (later ops in the tx see earlier ones). It returns the ops and an
// undo snapshot taken before generation, for aborted transactions.
func (m *diffModel) snapshot() diffModel {
	s := diffModel{nextNode: m.nextNode, nextRel: m.nextRel,
		liveNodes: make(map[int]bool, len(m.liveNodes)),
		liveRels:  make(map[int][2]int, len(m.liveRels))}
	for k := range m.liveNodes {
		s.liveNodes[k] = true
	}
	for k, v := range m.liveRels {
		s.liveRels[k] = v
	}
	return s
}

func (m *diffModel) genTx(rng *rand.Rand) []logicalOp {
	n := 1 + rng.Intn(5)
	ops := make([]logicalOp, 0, n)
	for i := 0; i < n; i++ {
		switch p := rng.Float64(); {
		case p < 0.40 || len(m.liveNodes) < 2:
			h := m.nextNode
			m.nextNode++
			m.liveNodes[h] = true
			ops = append(ops, logicalOp{kind: "addnode", node: h})
		case p < 0.75:
			// The store enforces (src,dst) uniqueness; draw a pair not
			// currently live (bounded retries, else skip the op).
			for tries := 0; tries < 8; tries++ {
				src, dst := m.randLiveNode(rng), m.randLiveNode(rng)
				dup := false
				for _, ends := range m.liveRels {
					if ends[0] == src && ends[1] == dst {
						dup = true
						break
					}
				}
				if dup {
					continue
				}
				h := m.nextRel
				m.nextRel++
				m.liveRels[h] = [2]int{src, dst}
				ops = append(ops, logicalOp{kind: "addrel", rel: h, src: src, dst: dst})
				break
			}
		case p < 0.85:
			if h := m.randLiveRel(rng); h >= 0 {
				delete(m.liveRels, h)
				ops = append(ops, logicalOp{kind: "delrel", rel: h})
			}
		case p < 0.93:
			if h := m.randLiveNode(rng); h >= 0 {
				delete(m.liveNodes, h)
				for rh, ends := range m.liveRels {
					if ends[0] == h || ends[1] == h {
						delete(m.liveRels, rh)
					}
				}
				ops = append(ops, logicalOp{kind: "delnode", node: h})
			}
		default:
			if h := m.randLiveNode(rng); h >= 0 {
				ops = append(ops, logicalOp{kind: "setprop", node: h})
			}
		}
	}
	return ops
}

// apply replays one logical op into a target's open transaction.
func (d *diffTarget) apply(t *testing.T, tx rwTx, op logicalOp) {
	t.Helper()
	var err error
	switch op.kind {
	case "addnode":
		d.nodes[op.node], err = tx.AddNode("V", nil)
	case "addrel":
		d.rels[op.rel], err = tx.AddRel(d.nodes[op.src], d.nodes[op.dst], "e", 1+float64(op.rel%7))
	case "delrel":
		err = tx.DeleteRel(d.rels[op.rel])
	case "delnode":
		err = tx.DeleteNode(d.nodes[op.node])
	case "setprop":
		err = tx.SetNodeProp(d.nodes[op.node], "k", Int(int64(op.node)))
	}
	if err != nil {
		t.Fatalf("%s (logical node %d rel %d): %v", op.kind, op.node, op.rel, err)
	}
}

// stitchedByGID maps a stitched result's slice into global-ID keyed lookups.
func stitchedByGID[T any](gids []uint64, vals []T) map[uint64]T {
	m := make(map[uint64]T, len(gids))
	for i, g := range gids {
		m[g] = vals[i]
	}
	return m
}

func TestShardedAnalyticsMatchSingleDomain(t *testing.T) {
	for _, shards := range []int{2, 4, 8} {
		shards := shards
		t.Run(map[int]string{2: "N2", 4: "N4", 8: "N8"}[shards], func(t *testing.T) {
			single, err := Open(Options{})
			if err != nil {
				t.Fatalf("Open single: %v", err)
			}
			defer single.Close()
			sharded, err := Open(Options{Shards: shards})
			if err != nil {
				t.Fatalf("Open sharded: %v", err)
			}
			defer sharded.Close()

			targets := []*diffTarget{
				{db: single, nodes: map[int]uint64{}, rels: map[int]uint64{}},
				{db: sharded, nodes: map[int]uint64{}, rels: map[int]uint64{}},
			}

			rng := rand.New(rand.NewSource(int64(1000 + shards)))
			model := &diffModel{liveNodes: map[int]bool{}, liveRels: map[int][2]int{}}
			txCount := 150
			if testing.Short() {
				txCount = 40
			}
			for i := 0; i < txCount; i++ {
				before := model.snapshot()
				ops := model.genTx(rng)
				abort := rng.Float64() < 0.12
				for _, d := range targets {
					tx := d.begin(t)
					for _, op := range ops {
						d.apply(t, tx, op)
					}
					if abort {
						if err := tx.Abort(); err != nil {
							t.Fatalf("Abort: %v", err)
						}
					} else if err := tx.Commit(); err != nil {
						t.Fatalf("Commit: %v", err)
					}
				}
				if abort {
					*model = before
				}
			}
			if len(model.liveNodes) == 0 {
				t.Fatalf("degenerate workload: no live nodes")
			}
			src := model.randLiveNode(rng)

			// Stats must be logical: LiveNodes/LiveRels identical to the
			// single domain's, ghost stand-ins reported separately.
			sst, shst := single.Stats(), sharded.Stats()
			if shst.LiveNodes != sst.LiveNodes || shst.LiveRels != sst.LiveRels {
				t.Fatalf("sharded stats %d nodes/%d rels (+%d ghosts), single domain %d/%d",
					shst.LiveNodes, shst.LiveRels, shst.GhostNodes, sst.LiveNodes, sst.LiveRels)
			}

			for _, kind := range []AnalyticsKind{BFS, SSSP, PageRank, WCC} {
				sres, err := single.RunAnalytics(kind, targets[0].nodes[src])
				if err != nil {
					t.Fatalf("single %v: %v", kind, err)
				}
				st, err := sharded.RunAnalyticsStitched(kind, targets[1].nodes[src])
				if err != nil {
					t.Fatalf("stitched %v: %v", kind, err)
				}

				// The composite must cover exactly the single-domain vertex
				// slots: same allocation count, ghosts excluded.
				var n int
				switch kind {
				case BFS:
					n = len(sres.Levels)
				case SSSP:
					n = len(sres.Dists)
				case PageRank:
					n = len(sres.Ranks)
				case WCC:
					n = len(sres.Comp)
				}
				if len(st.GlobalIDs) != n {
					t.Fatalf("%v: composite has %d vertices, single domain has %d",
						kind, len(st.GlobalIDs), n)
				}

				switch kind {
				case BFS:
					lvl := stitchedByGID(st.GlobalIDs, st.Levels)
					for ln := range model.liveNodes {
						got, want := lvl[targets[1].nodes[ln]], sres.Levels[targets[0].nodes[ln]]
						if got != want {
							t.Fatalf("BFS: logical node %d level %d (sharded) != %d (single)", ln, got, want)
						}
					}
				case SSSP:
					dist := stitchedByGID(st.GlobalIDs, st.Dists)
					for ln := range model.liveNodes {
						got, want := dist[targets[1].nodes[ln]], sres.Dists[targets[0].nodes[ln]]
						if math.IsInf(got, 1) != math.IsInf(want, 1) ||
							(!math.IsInf(got, 1) && math.Abs(got-want) > 1e-9) {
							t.Fatalf("SSSP: logical node %d dist %g (sharded) != %g (single)", ln, got, want)
						}
					}
				case PageRank:
					rank := stitchedByGID(st.GlobalIDs, st.Ranks)
					for ln := range model.liveNodes {
						got, want := rank[targets[1].nodes[ln]], sres.Ranks[targets[0].nodes[ln]]
						if math.Abs(got-want) > 1e-9 {
							t.Fatalf("PageRank: logical node %d rank %.15f (sharded) != %.15f (single)", ln, got, want)
						}
					}
				case WCC:
					// Component labels live in different ID spaces; compare
					// the partition structure instead.
					comp := stitchedByGID(st.GlobalIDs, st.Comp)
					singleGroups := map[uint64][]int{}
					shardGroups := map[uint64][]int{}
					for ln := range model.liveNodes {
						singleGroups[sres.Comp[targets[0].nodes[ln]]] = append(singleGroups[sres.Comp[targets[0].nodes[ln]]], ln)
						shardGroups[comp[targets[1].nodes[ln]]] = append(shardGroups[comp[targets[1].nodes[ln]]], ln)
					}
					if len(singleGroups) != len(shardGroups) {
						t.Fatalf("WCC: %d components (single) != %d (sharded)", len(singleGroups), len(shardGroups))
					}
					canon := func(groups map[uint64][]int) map[int][]int {
						out := map[int][]int{}
						for _, g := range groups {
							sortInts(g)
							out[g[0]] = g
						}
						return out
					}
					sg, hg := canon(singleGroups), canon(shardGroups)
					for rep, g := range sg {
						h, ok := hg[rep]
						if !ok || len(h) != len(g) {
							t.Fatalf("WCC: component of logical node %d differs", rep)
						}
						for i := range g {
							if g[i] != h[i] {
								t.Fatalf("WCC: component of logical node %d differs at member %d", rep, i)
							}
						}
					}
				}
			}

			// The adapted facade Result must agree with the single-domain
			// arrays on live nodes too (global-ID indexed scatter).
			fres, err := sharded.RunAnalytics(BFS, targets[1].nodes[src])
			if err != nil {
				t.Fatalf("sharded facade BFS: %v", err)
			}
			sres, err := single.RunAnalytics(BFS, targets[0].nodes[src])
			if err != nil {
				t.Fatalf("single BFS: %v", err)
			}
			for ln := range model.liveNodes {
				if fres.Levels[targets[1].nodes[ln]] != sres.Levels[targets[0].nodes[ln]] {
					t.Fatalf("facade scatter: logical node %d level mismatch", ln)
				}
			}
		})
	}
}
