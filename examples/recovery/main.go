// Recovery: the §6.5 persistent delta store scenario. Updates are captured
// into a PMem-resident DELTA_FE store and the replica CSR keeps a
// persistent recovery copy; after a crash, both recover instantly — the
// delta store resumes exactly where it left off (consumed deltas stay
// consumed, pending ones stay pending) and the CSR is loaded rather than
// rebuilt.
//
// This example drives the internal packages directly to show the recovery
// machinery; the h2tap facade wires the same pieces via Options.PersistDir.
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"
	"time"

	"h2tap/internal/csr"
	"h2tap/internal/delta"
	"h2tap/internal/deltastore"
	"h2tap/internal/graph"
	"h2tap/internal/ldbc"
	"h2tap/internal/mvto"
	"h2tap/internal/pmem"
	"h2tap/internal/sim"
)

func main() {
	dir, err := os.MkdirTemp("", "h2tap-recovery-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	poolPath := filepath.Join(dir, "store.pool")

	// ---- Session 1: run, propagate part of the stream, then "crash". ----
	pool, err := pmem.Create(poolPath, 16<<20, sim.DefaultPMem())
	if err != nil {
		log.Fatal(err)
	}
	ds, err := deltastore.NewPersistent(pool)
	if err != nil {
		log.Fatal(err)
	}

	g := graph.NewStore()
	data := ldbc.GenerateSNB(ldbc.SNBConfig{SF: 1, Downscale: 50, Seed: 3})
	loadTS, err := data.Load(g)
	if err != nil {
		log.Fatal(err)
	}
	g.AddCapturer(ds)
	replica := csr.Build(g, loadTS)
	fmt.Printf("session 1: loaded %d nodes / %d edges, replica built\n",
		g.LiveNodes(), g.LiveRels())

	// Commit some updates...
	mid := commitUpdates(g, data, 0, 300)
	// ...propagate them (consumes their deltas, persists invalidation)...
	tp := g.Oracle().Begin()
	batch := ds.Scan(tp.TS())
	replica, _ = csr.Merge(replica, batch)
	tp.Commit()
	csrOff, err := csr.PersistTo(pool, replica) // the §6.5 recovery copy
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("session 1: propagated %d deltas, persisted CSR copy (%d B of media time charged: %v)\n",
		batch.Records, replica.Bytes(), time.Duration(pool.SimTime()).Round(time.Microsecond))

	// ...commit MORE updates that never get propagated before the crash.
	_ = commitUpdates(g, data, mid, 200)
	pending := ds.Records() // includes consumed ones; pending = valid subset
	fmt.Printf("session 1: %d total delta records in store, crash now ☠\n", pending)
	// Simulated crash: the process state (volatile twin, replica, main
	// graph DRAM copy) is gone. Only the pool file survives.
	_ = pool.Close()

	// ---- Session 2: recover. ----
	t0 := time.Now()
	pool2, err := pmem.Open(poolPath, sim.DefaultPMem())
	if err != nil {
		log.Fatal(err)
	}
	defer pool2.Close()
	ds2, err := deltastore.OpenPersistent(pool2)
	if err != nil {
		log.Fatal(err)
	}
	recovered, err := csr.LoadPersistent(pool2, csrOff)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("session 2: recovered delta store (%d records) and CSR (%d nodes, %d edges) in %v\n",
		ds2.Records(), recovered.NumNodes(), recovered.NumEdges(),
		time.Since(t0).Round(time.Microsecond))

	// Apply the deltas that were pending at crash time: the replica
	// catches up without a rebuild. Consumed deltas stay consumed — the
	// persisted validity flags guarantee exactly-once application.
	batch2 := ds2.Scan(mvto.TS(1 << 40))
	caughtUp, _ := csr.Merge(recovered, batch2)
	fmt.Printf("session 2: applied %d pending deltas after recovery\n", batch2.Records)

	if err := caughtUp.Validate(); err != nil {
		log.Fatalf("recovered replica invalid: %v", err)
	}
	fmt.Printf("session 2: replica valid — %d edges after catch-up ✓\n", caughtUp.NumEdges())
	fmt.Println("\n(the alternative without §6.5 persistence: rebuild the CSR from scratch on every restart)")
}

// commitUpdates inserts likes edges person→post through transactions and
// returns the next offset into the person list.
func commitUpdates(g *graph.Store, data *ldbc.Dataset, from, n int) int {
	i := from
	for done := 0; done < n; i++ {
		p := data.Persons[i%len(data.Persons)]
		post := data.Posts[(i*13)%len(data.Posts)]
		tx := g.Begin()
		if _, err := tx.AddRel(p, post, "likes", 1); err != nil {
			tx.Abort()
			continue
		}
		if err := tx.Commit(); err == nil {
			done++
		}
	}
	return i
}

var _ = delta.Edge{} // keep the delta types in view for readers of this example
