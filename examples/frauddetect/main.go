// Fraud detection: real-time analytics over a streaming payment graph — one
// of the HTAP use cases motivating the paper (§1, [17], [82]). Accounts are
// nodes, transfers are weighted edges ingested transactionally; the
// analytics side periodically runs WCC on the *dynamic* GPU replica to find
// suspicious transfer rings, and SSSP to trace cheapest laundering paths
// from a flagged account — always on the freshest committed state.
package main

import (
	"fmt"
	"log"
	"math"
	"math/rand"
	"time"

	"h2tap"
)

const (
	accounts  = 3000
	ringSize  = 8
	ringCount = 4
)

func main() {
	// The dynamic replica path (§5.4 Algorithm 1): coalesced delta
	// transfer + batched ingestion, no full-CSR reshipping.
	db, err := h2tap.Open(h2tap.Options{Replica: h2tap.DynamicHash})
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()

	// Seed accounts.
	nodes := make([]h2tap.NodeSpec, accounts)
	for i := range nodes {
		nodes[i] = h2tap.NodeSpec{Label: "Account", Props: map[string]h2tap.Value{
			"iban": h2tap.Str(fmt.Sprintf("DE%010d", i)),
		}}
	}
	if err := db.BulkLoad(nodes, nil); err != nil {
		log.Fatal(err)
	}

	r := rand.New(rand.NewSource(42))
	stream := func(n int) int {
		committed := 0
		for i := 0; i < n; i++ {
			tx := db.Begin()
			src := h2tap.NodeID(r.Intn(accounts))
			dst := h2tap.NodeID(r.Intn(accounts))
			amount := 10 + float64(r.Intn(5000))
			if _, err := tx.AddRel(src, dst, "transfer", amount); err != nil {
				tx.Abort()
				continue
			}
			if err := tx.Commit(); err == nil {
				committed++
			}
		}
		return committed
	}

	// Normal traffic.
	n := stream(4000)
	fmt.Printf("ingested %d transfers\n", n)

	// Inject laundering rings: closed low-amount cycles between otherwise
	// unrelated accounts (fresh ones, so they form isolated components).
	ringStart := accounts
	tx := db.Begin()
	for ring := 0; ring < ringCount; ring++ {
		var ids []h2tap.NodeID
		for i := 0; i < ringSize; i++ {
			id, err := tx.AddNode("Account", map[string]h2tap.Value{
				"iban": h2tap.Str(fmt.Sprintf("XX%02d-%02d", ring, i)),
			})
			if err != nil {
				log.Fatal(err)
			}
			ids = append(ids, id)
		}
		for i := range ids {
			if _, err := tx.AddRel(ids[i], ids[(i+1)%len(ids)], "transfer", 9.99); err != nil {
				log.Fatal(err)
			}
		}
	}
	if err := tx.Commit(); err != nil {
		log.Fatal(err)
	}

	// WCC on the fresh replica: the rings show up as small isolated
	// components among the big organic one.
	res, err := db.RunAnalytics(h2tap.WCC, 0)
	if err != nil {
		log.Fatal(err)
	}
	sizes := map[uint64]int{}
	for _, c := range res.Comp {
		sizes[c]++
	}
	suspicious := 0
	for root, size := range sizes {
		if size > 1 && size <= ringSize && int(root) >= ringStart {
			suspicious++
		}
	}
	fmt.Printf("WCC over %d accounts: %d components, %d suspicious rings (expect %d)\n",
		len(res.Comp), len(sizes), suspicious, ringCount)
	fmt.Printf("  propagation: %d deltas, %v; WCC kernel(sim): %v\n",
		res.Propagation.Records, res.Propagation.Total.Total().Round(time.Microsecond),
		time.Duration(res.KernelSim).Round(time.Microsecond))

	// Trace cheapest transfer paths from a flagged account while new
	// traffic keeps arriving — freshness check triggers re-propagation.
	stream(1000)
	flagged := h2tap.NodeID(ringStart) // first ring member
	sssp, err := db.RunAnalytics(h2tap.SSSP, flagged)
	if err != nil {
		log.Fatal(err)
	}
	reachable := 0
	for _, d := range sssp.Dists {
		if !math.IsInf(d, 1) {
			reachable++
		}
	}
	fmt.Printf("SSSP from flagged %d: %d reachable accounts (ring is closed: dist back within ring = %.2f·%d)\n",
		flagged, reachable, 9.99, ringSize-1)
	if sssp.Propagation.Triggered {
		fmt.Printf("  re-propagated %d deltas before tracing (freshness, §4.3)\n",
			sssp.Propagation.Records)
	}

	st := db.Stats()
	fmt.Printf("\nstats: %d accounts, %d transfers, %d propagations, delta store %d B\n",
		st.LiveNodes, st.LiveRels, st.Propagations, st.DeltaBytes)
}
