// Recommendations: hybrid transactional reads + analytics on one system.
// The OLTP side serves "people you may know" with two-hop transactional
// traversals (the §1 neighborhood workloads) through the fluent query API;
// the OLAP side ranks globally influential people with PageRank and finds
// social circles with CDLP on the GPU replica — all over the same graph,
// with the replica kept fresh by DELTA_FE.
package main

import (
	"fmt"
	"log"
	"sort"
	"time"

	"h2tap"
	"h2tap/internal/graph"
	"h2tap/internal/ldbc"
)

func main() {
	db, err := h2tap.Open(h2tap.Options{})
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()

	ds := ldbc.GenerateSNB(ldbc.SNBConfig{SF: 1, Downscale: 25, Seed: 11})
	if err := db.BulkLoad(ds.Nodes, ds.Edges); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("social graph: %d persons, %d posts, %d relationships\n",
		len(ds.Persons), len(ds.Posts), ds.NumEdges())

	// OLTP: transactional two-hop recommendation for one user — friends of
	// friends who are not yet friends, via the traversal API.
	me := ds.Persons[3]
	tx := db.Begin()
	friends, err := tx.From(me).Out(ldbc.RelKnows).Collect()
	if err != nil {
		log.Fatal(err)
	}
	fof, err := tx.From(me).Out(ldbc.RelKnows).Out(ldbc.RelKnows).WhereLabel("Person").Collect()
	if err != nil {
		log.Fatal(err)
	}
	isFriend := map[h2tap.NodeID]bool{me: true}
	for _, f := range friends {
		isFriend[f] = true
	}
	var recs []h2tap.NodeID
	for _, p := range fof {
		if !isFriend[p] {
			recs = append(recs, p)
		}
	}
	tx.Abort() // read-only
	fmt.Printf("person#%d: %d friends, %d friends-of-friends, %d recommendations\n",
		me, len(friends), len(fof), len(recs))

	// OLTP: property-filtered retrieval — young people among the
	// recommendations (the "filter by label and property value" workload).
	tx2 := db.Begin()
	young, err := tx2.From(recs...).
		Where("birthYear", graph.IntRange(1990, 2010)).
		Limit(5).Collect()
	if err != nil {
		log.Fatal(err)
	}
	tx2.Abort()
	fmt.Printf("young recommendations (birthYear ≥ 1990): %d\n", len(young))

	// OLAP: global influence ranking on the GPU replica.
	pr, err := db.RunAnalytics(h2tap.PageRank, 0)
	if err != nil {
		log.Fatal(err)
	}
	type ranked struct {
		id   h2tap.NodeID
		rank float64
	}
	var top []ranked
	for _, p := range ds.Persons {
		top = append(top, ranked{p, pr.Ranks[p]})
	}
	sort.Slice(top, func(i, j int) bool { return top[i].rank > top[j].rank })
	fmt.Println("top influencers:")
	for _, r := range top[:3] {
		fmt.Printf("  person#%d rank %.6f\n", r.id, r.rank)
	}

	// OLAP: community detection for circle-based suggestions.
	cd, err := db.RunAnalytics(h2tap.CDLP, 0)
	if err != nil {
		log.Fatal(err)
	}
	communities := map[uint64]int{}
	for _, p := range ds.Persons {
		communities[cd.Comp[p]]++
	}
	sizes := make([]int, 0, len(communities))
	for _, n := range communities {
		sizes = append(sizes, n)
	}
	sort.Sort(sort.Reverse(sort.IntSlice(sizes)))
	fmt.Printf("CDLP: %d communities among persons; largest: %v — kernel(sim) %v\n",
		len(communities), sizes[:min(3, len(sizes))],
		time.Duration(cd.KernelSim).Round(time.Microsecond))

	// The pipeline stays fresh: a new friendship immediately affects both
	// the transactional recommendations and the next analytics run.
	tx3 := db.Begin()
	if len(recs) > 0 {
		if _, err := tx3.AddRel(me, recs[0], ldbc.RelKnows, 1); err == nil {
			tx3.Commit()
			fmt.Printf("added friendship person#%d → person#%d\n", me, recs[0])
		} else {
			tx3.Abort()
		}
	} else {
		tx3.Abort()
	}
	res, err := db.RunAnalytics(h2tap.BFS, me)
	if err != nil {
		log.Fatal(err)
	}
	if res.Propagation.Triggered {
		fmt.Printf("replica refreshed with %d delta records before BFS\n", res.Propagation.Records)
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
