// Social network: the paper's motivating scenario (§1, §6.2) — an
// LDBC-SNB-like graph under a continuous transactional update stream
// (people joining, likes, unfollows) with real-time analytics: fresh
// PageRank influencer rankings served from the GPU replica via the §4.3
// analytics queue while updates keep flowing.
package main

import (
	"fmt"
	"log"
	"math/rand"
	"sync"
	"time"

	"h2tap"
	"h2tap/internal/ldbc"
	"h2tap/internal/workload"
)

func main() {
	db, err := h2tap.Open(h2tap.Options{Replica: h2tap.StaticCSR})
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()

	// Load the SNB-like social graph.
	ds := ldbc.GenerateSNB(ldbc.SNBConfig{SF: 1, Downscale: 20, Seed: 7})
	if err := db.BulkLoad(ds.Nodes, ds.Edges); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("loaded social network: %d persons, %d posts, %d relationships\n",
		len(ds.Persons), len(ds.Posts), ds.NumEdges())
	if err := db.StartEngine(); err != nil {
		log.Fatal(err)
	}

	// Transactional update stream in the background: the OLTP side.
	stop := make(chan struct{})
	var wg sync.WaitGroup
	var committed int
	wg.Add(1)
	go func() {
		defer wg.Done()
		win := workload.DegreeWindow(db.Store(), db.SnapshotTS(), ds.Persons, workload.HiDeg, 200)
		gen := workload.NewGenerator(win, ds.Posts, 99)
		for {
			select {
			case <-stop:
				return
			default:
			}
			res := workload.Run(db.Store(), gen.Mixed(200))
			committed += res.Committed
			time.Sleep(2 * time.Millisecond)
		}
	}()

	// The OLAP side: periodic influencer rankings, each on the freshest
	// committed state (§4.3 freshness).
	r := rand.New(rand.NewSource(1))
	for round := 1; round <= 5; round++ {
		time.Sleep(20 * time.Millisecond)
		ticket, err := db.Submit(h2tap.PageRank, 0)
		if err != nil {
			log.Fatal(err)
		}
		// A concurrent BFS shares the same replica version (queue case 2).
		bfsTicket, err := db.Submit(h2tap.BFS, ds.Persons[r.Intn(len(ds.Persons))])
		if err != nil {
			log.Fatal(err)
		}
		res, err := ticket.Wait()
		if err != nil {
			log.Fatal(err)
		}
		if _, err := bfsTicket.Wait(); err != nil {
			log.Fatal(err)
		}

		top, topRank := 0, 0.0
		for _, p := range ds.Persons {
			if int(p) < len(res.Ranks) && res.Ranks[p] > topRank {
				top, topRank = int(p), res.Ranks[p]
			}
		}
		fresh := "fresh replica"
		if res.Propagation.Triggered {
			fresh = fmt.Sprintf("propagated %d deltas in %v",
				res.Propagation.Records, res.Propagation.Total.Total().Round(time.Microsecond))
		}
		fmt.Printf("round %d: top influencer person#%d (rank %.6f) — %s, kernel(sim) %v\n",
			round, top, topRank, fresh, time.Duration(res.KernelSim).Round(time.Microsecond))
	}
	close(stop)
	wg.Wait()

	st := db.Stats()
	fmt.Printf("\nfinal: %d update txns committed, %d propagation cycles, delta store %d records / %d B\n",
		committed, st.Propagations, st.DeltaRecords, st.DeltaBytes)
}
