// Quickstart: the smallest end-to-end H2TAP flow — transactions on the main
// property graph, automatic update propagation, analytics on the (simulated)
// GPU replica.
package main

import (
	"fmt"
	"log"
	"time"

	"h2tap"
)

func main() {
	db, err := h2tap.Open(h2tap.Options{})
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()

	// A tiny social graph, built transactionally.
	tx := db.Begin()
	people := map[string]h2tap.NodeID{}
	for _, name := range []string{"alice", "bob", "carol", "dave", "erin"} {
		id, err := tx.AddNode("Person", map[string]h2tap.Value{"name": h2tap.Str(name)})
		if err != nil {
			log.Fatal(err)
		}
		people[name] = id
	}
	for _, e := range []struct {
		from, to string
		w        float64
	}{
		{"alice", "bob", 1}, {"bob", "carol", 1}, {"carol", "dave", 2},
		{"alice", "carol", 4}, {"dave", "erin", 1}, {"erin", "alice", 3},
	} {
		if _, err := tx.AddRel(people[e.from], people[e.to], "knows", e.w); err != nil {
			log.Fatal(err)
		}
	}
	if err := tx.Commit(); err != nil {
		log.Fatal(err)
	}

	// First analytics call: the engine builds the replica, then runs BFS on
	// the simulated GPU.
	bfs, err := db.RunAnalytics(h2tap.BFS, people["alice"])
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("BFS levels from alice:")
	for name, id := range people {
		fmt.Printf("  %-6s level %d\n", name, bfs.Levels[id])
	}

	// More updates: the replica is now stale...
	tx2 := db.Begin()
	frank, _ := tx2.AddNode("Person", map[string]h2tap.Value{"name": h2tap.Str("frank")})
	tx2.AddRel(people["dave"], frank, "knows", 1)
	if err := tx2.Commit(); err != nil {
		log.Fatal(err)
	}

	// ...so the next analytics triggers update propagation first.
	sssp, err := db.RunAnalytics(h2tap.SSSP, people["alice"])
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nSSSP alice→frank: %.0f (via dave)\n", sssp.Dists[frank])
	fmt.Printf("propagation: %d delta records applied in %v (scan %v, merge %v, transfer(sim) %v)\n",
		sssp.Propagation.Records,
		sssp.Propagation.Total.Total().Round(time.Microsecond),
		sssp.Propagation.ScanWall.Round(time.Microsecond),
		sssp.Propagation.MergeWall.Round(time.Microsecond),
		time.Duration(sssp.Propagation.TransferSim).Round(time.Microsecond))

	st := db.Stats()
	fmt.Printf("\nstats: %d nodes, %d relationships, %d propagations, device mem %d B\n",
		st.LiveNodes, st.LiveRels, st.Propagations, st.DeviceMemUsed)
}
