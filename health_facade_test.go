package h2tap

import (
	"errors"
	"testing"
	"time"

	"h2tap/internal/faultinject"
)

// seedDB opens a volatile database with n connected Person nodes committed
// and the engine started.
func seedDB(t *testing.T, opts Options, n int) (*DB, []NodeID) {
	t.Helper()
	db, err := Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { db.Close() })
	tx := db.Begin()
	ids := make([]NodeID, n)
	for i := range ids {
		if ids[i], err = tx.AddNode("Person", nil); err != nil {
			t.Fatal(err)
		}
		if i > 0 {
			if _, err := tx.AddRel(ids[i-1], ids[i], "knows", 1); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := db.StartEngine(); err != nil {
		t.Fatal(err)
	}
	return db, ids
}

// TestHealthAndScrubThroughFacade exercises the health surface on a clean
// database: Healthy before and after the engine starts, zero staleness
// once propagated, and a clean scrub.
func TestHealthAndScrubThroughFacade(t *testing.T) {
	db, ids := seedDB(t, Options{}, 4)
	if h, err := db.Health(); h != Healthy || err != nil {
		t.Fatalf("health = %v (%v)", h, err)
	}
	if _, err := db.RunAnalytics(BFS, ids[0]); err != nil {
		t.Fatal(err)
	}
	if st := db.ReplicaStaleness(); !st.Fresh() {
		t.Fatalf("staleness after analytics = %+v", st)
	}
	sr, err := db.Scrub()
	if err != nil {
		t.Fatalf("scrub: %v", err)
	}
	if sr.Diverged {
		t.Fatal("clean replica reported divergent")
	}
	if st := db.Stats(); st.Health != Healthy || st.DegradedCycles != 0 {
		t.Fatalf("stats = %+v", st)
	}
}

// TestBackpressureWhenDegradedAndOverHighWater checks the facade half of
// the high-water backstop: with the engine Degraded (device wedged) and
// the delta store past its high-water mark, commits fail with
// ErrBackpressure until a propagation cycle recovers the engine.
func TestBackpressureWhenDegradedAndOverHighWater(t *testing.T) {
	db, ids := seedDB(t, Options{
		DeltaHighWater: 6,
		Retry:          RetryPolicy{MaxAttempts: 2, Backoff: 10 * time.Microsecond, MaxBackoff: 20 * time.Microsecond},
	}, 4)

	// Wedge the device: every replica apply and rebuild path faults.
	plan := faultinject.NewGPUPlan()
	plan.Arm(faultinject.GPUReplace, 1, faultinject.Persistent)
	plan.Arm(faultinject.GPUReplaceStreamed, 1, faultinject.Persistent)
	db.Engine().Device().SetFaultInjector(plan)

	commitEdge := func(i int) error {
		tx := db.Begin()
		if _, err := tx.AddRel(ids[i%4], ids[(i+2)%4], "knows", float64(i)); err != nil {
			tx.Abort()
			return err
		}
		return tx.Commit()
	}

	// Degrade the engine: a propagation attempt fails through every rung.
	if err := commitEdge(0); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Propagate(); !errors.Is(err, faultinject.ErrGPUInjected) {
		t.Fatalf("propagate under wedged device = %v", err)
	}
	if h, _ := db.Health(); h != Degraded {
		t.Fatalf("health = %v", h)
	}

	// Commits still succeed below the high-water mark...
	var hitBackpressure bool
	for i := 1; i < 12; i++ {
		err := commitEdge(i)
		if err == nil {
			continue
		}
		if !errors.Is(err, ErrBackpressure) {
			t.Fatalf("commit %d failed with %v, want ErrBackpressure", i, err)
		}
		hitBackpressure = true
		break
	}
	// ...and are rejected once the store grows past it.
	if !hitBackpressure {
		t.Fatalf("no commit hit backpressure (records=%d, high water=%d)",
			db.DeltaStore().Records(), db.DeltaStore().HighWater())
	}

	// Recovery lifts the backpressure.
	plan.Heal()
	if _, err := db.Propagate(); err != nil {
		t.Fatalf("healed propagate: %v", err)
	}
	if h, _ := db.Health(); h != Healthy {
		t.Fatalf("health after recovery = %v", h)
	}
	tx := db.Begin()
	if _, err := tx.AddNode("Person", nil); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatalf("commit after recovery: %v", err)
	}
	st := db.Stats()
	if st.DegradedCycles == 0 || st.Retries == 0 {
		t.Fatalf("stats after degraded window = %+v", st)
	}
}
