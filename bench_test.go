// Benchmarks regenerating the measurable kernel of every table and figure
// in the paper's evaluation (§6). Each BenchmarkFigN family isolates the
// operation the corresponding plot varies; the full series with paper-style
// rows comes from `go run ./cmd/h2tap-bench`. BenchmarkAblation* cover the
// design choices DESIGN.md §5 calls out.
package h2tap

import (
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"h2tap/internal/costmodel"
	"h2tap/internal/csr"
	"h2tap/internal/delta"
	"h2tap/internal/deltai"
	"h2tap/internal/deltastore"
	"h2tap/internal/dyngraph"
	"h2tap/internal/gpu"
	"h2tap/internal/graph"
	"h2tap/internal/ldbc"
	"h2tap/internal/mvto"
	"h2tap/internal/pmem"
	"h2tap/internal/relstore"
	"h2tap/internal/sim"
	"h2tap/internal/sortledton"
	"h2tap/internal/workload"

	"h2tap/internal/analytics"
)

// benchGraph loads an SNB-like graph for benchmarking.
func benchGraph(b testing.TB, sf float64, down int) (*graph.Store, *ldbc.Dataset, mvto.TS) {
	b.Helper()
	ds := ldbc.GenerateSNB(ldbc.SNBConfig{SF: sf, Downscale: down, Seed: 1})
	s := graph.NewStore()
	ts, err := ds.Load(s)
	if err != nil {
		b.Fatal(err)
	}
	return s, ds, ts
}

type captKind int

const (
	captBaseline captKind = iota
	captDeltaFE
	captDeltaI
	captR
)

func (k captKind) String() string {
	return [...]string{"Baseline", "DELTA_FE", "DELTA_I", "R"}[k]
}

func register(s *graph.Store, k captKind) {
	switch k {
	case captDeltaFE:
		s.AddCapturer(deltastore.NewVolatile())
	case captDeltaI:
		s.AddCapturer(deltai.New(s))
	case captR:
		s.AddCapturer(relstore.New(s))
	}
}

// ---- Fig 3 / 6 / 7: transactional update time per capturer, op, window ----

// benchUpdateOps measures one operation kind against a fresh-enough graph:
// it cycles bounded op streams, re-seating a fresh store (untimed) whenever
// a stream is exhausted. This keeps memory bounded and the workload out of
// the saturated regime (duplicate-edge skips, emptied delete windows) no
// matter how large b.N grows.
func benchUpdateOps(b *testing.B, op workload.OpKind, mixed bool, win workload.WindowKind, k captKind) {
	const streamLen = 5000
	var s *graph.Store
	var ops []workload.Op
	pos := 0
	seed := int64(42)
	reset := func() {
		b.StopTimer()
		var ds *ldbc.Dataset
		var ts mvto.TS
		s, ds, ts = benchGraph(b, 1, 50)
		register(s, k)
		windowIDs := workload.DegreeWindow(s, ts, ds.Persons, win, len(ds.Persons)/5)
		g := workload.NewGenerator(windowIDs, ds.Posts, seed)
		seed++
		if mixed {
			ops = g.Mixed(streamLen)
		} else {
			ops = g.Ops(op, streamLen)
		}
		pos = 0
		b.StartTimer()
	}
	reset()
	committed := 0
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if pos == len(ops) {
			reset()
		}
		if workload.ApplyOne(s, &ops[pos]) {
			committed++
		}
		pos++
	}
	b.StopTimer()
	if committed == 0 && b.N > 20 {
		b.Fatal("nothing committed")
	}
}

func BenchmarkFig3InsertRel(b *testing.B) {
	for _, k := range []captKind{captBaseline, captDeltaFE, captDeltaI} {
		for _, win := range []workload.WindowKind{workload.LoDeg, workload.HiDeg} {
			b.Run(fmt.Sprintf("%s/%s", k, win), func(b *testing.B) {
				benchUpdateOps(b, workload.InsertRel, false, win, k)
			})
		}
	}
}

func BenchmarkFig3InsertNode(b *testing.B) {
	for _, k := range []captKind{captBaseline, captDeltaFE, captDeltaI} {
		b.Run(k.String(), func(b *testing.B) {
			benchUpdateOps(b, workload.InsertNode, false, workload.HiDeg, k)
		})
	}
}

func BenchmarkFig3DeleteRel(b *testing.B) {
	for _, k := range []captKind{captBaseline, captDeltaFE, captDeltaI} {
		b.Run(k.String(), func(b *testing.B) {
			benchUpdateOps(b, workload.DeleteRel, false, workload.HiDeg, k)
		})
	}
}

func BenchmarkFig3DeleteNode(b *testing.B) {
	for _, k := range []captKind{captBaseline, captDeltaFE, captDeltaI} {
		b.Run(k.String(), func(b *testing.B) {
			benchUpdateOps(b, workload.DeleteNode, false, workload.HiDeg, k)
		})
	}
}

func BenchmarkFig3Mixed(b *testing.B) {
	for _, k := range []captKind{captBaseline, captDeltaFE, captDeltaI} {
		b.Run(k.String(), func(b *testing.B) {
			benchUpdateOps(b, 0, true, workload.HiDeg, k)
		})
	}
}

// Fig 6 is the Baseline-vs-DELTA_FE subset of Fig 3; Fig 7 is the
// DELTA_I-minus-Baseline difference. Both fall out of the families above;
// these aliases keep one named target per figure.
func BenchmarkFig6BaselineVsFE(b *testing.B) {
	for _, k := range []captKind{captBaseline, captDeltaFE} {
		b.Run(k.String(), func(b *testing.B) {
			benchUpdateOps(b, 0, true, workload.HiDeg, k)
		})
	}
}

func BenchmarkFig7AppendOverhead(b *testing.B) {
	for _, k := range []captKind{captBaseline, captDeltaI} {
		b.Run(k.String(), func(b *testing.B) {
			benchUpdateOps(b, 0, true, workload.HiDeg, k)
		})
	}
}

// ---- Fig 4: delta memory footprint (reported as a metric) ----

func BenchmarkFig4Footprint(b *testing.B) {
	for _, k := range []captKind{captDeltaFE, captDeltaI} {
		b.Run(k.String(), func(b *testing.B) {
			// Bounded streams as in benchUpdateOps; footprint accumulates
			// across streams, so bytes/op stays meaningful.
			const streamLen = 5000
			var s *graph.Store
			var ops []workload.Op
			var bytesOf func() uint64
			var total uint64
			pos := 0
			seed := int64(42)
			reset := func() {
				b.StopTimer()
				if bytesOf != nil {
					total += bytesOf()
				}
				var ds *ldbc.Dataset
				var ts mvto.TS
				s, ds, ts = benchGraph(b, 1, 50)
				switch k {
				case captDeltaFE:
					fe := deltastore.NewVolatile()
					s.AddCapturer(fe)
					bytesOf = fe.ArrayBytes
				case captDeltaI:
					di := deltai.New(s)
					s.AddCapturer(di)
					bytesOf = di.ArrayBytes
				}
				win := workload.DegreeWindow(s, ts, ds.Persons, workload.HiDeg, len(ds.Persons)/5)
				g := workload.NewGenerator(win, ds.Posts, seed)
				seed++
				ops = g.Ops(workload.InsertRel, streamLen)
				pos = 0
				b.StartTimer()
			}
			reset()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if pos == len(ops) {
					reset()
				}
				workload.ApplyOne(s, &ops[pos])
				pos++
			}
			b.StopTimer()
			total += bytesOf()
			b.ReportMetric(float64(total)/float64(b.N), "deltaB/op")
		})
	}
}

// ---- Fig 5 / 10: update propagation (scan + merge) vs delta count ----

// benchPropagation measures one full propagation cycle (scan + merge) over
// a fixed 2000-query mixed workload; b.N counts cycles. Every cycle's
// workload runs untimed; the store is re-seated periodically to bound
// memory regardless of b.N.
func benchPropagation(b *testing.B, k captKind) {
	const opsPerCycle = 2000
	const cyclesPerStore = 25
	var s *graph.Store
	var fe *deltastore.Store
	var di *deltai.Store
	var base *csr.CSR
	var g *workload.Generator
	seed := int64(42)
	reset := func() {
		var ds *ldbc.Dataset
		var ts mvto.TS
		s, ds, ts = benchGraph(b, 1, 50)
		fe, di = nil, nil
		switch k {
		case captDeltaFE:
			fe = deltastore.NewVolatile()
			s.AddCapturer(fe)
		case captDeltaI:
			di = deltai.New(s)
			s.AddCapturer(di)
		}
		base = csr.Build(s, ts)
		win := workload.DegreeWindow(s, ts, ds.Persons, workload.HiDeg, len(ds.Persons)/5)
		g = workload.NewGenerator(win, ds.Posts, seed)
		seed++
	}
	reset()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		if i > 0 && i%cyclesPerStore == 0 {
			reset()
		}
		workload.Run(s, g.Mixed(opsPerCycle))
		tp := s.Oracle().LastCommitted() + 1
		b.StartTimer()
		switch k {
		case captDeltaFE:
			batch := fe.Scan(tp)
			merged, _ := csr.Merge(base, batch)
			base = merged
		case captDeltaI:
			snap := di.Scan(tp)
			base = deltai.MergeCSR(base, snap)
		}
	}
}

func BenchmarkFig5Propagation(b *testing.B) {
	for _, k := range []captKind{captDeltaFE, captDeltaI} {
		b.Run(k.String(), func(b *testing.B) { benchPropagation(b, k) })
	}
}

// fig10Batch is the fixed batch size the Fig 10 kernels operate on per
// iteration (ns/op = cost of one 50k-delta scan or merge).
const fig10Batch = 50_000

func BenchmarkFig10Scan(b *testing.B) {
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		fe := deltastore.NewVolatile()
		feedSynthetic(fe, fig10Batch, 1<<16)
		b.StartTimer()
		fe.Scan(1 << 40)
	}
}

func BenchmarkFig10Merge(b *testing.B) {
	s, _, ts := benchGraph(b, 1, 25)
	base := csr.Build(s, ts)
	fe := deltastore.NewVolatile()
	feedSynthetic(fe, fig10Batch, s.NumNodeSlots())
	batch := fe.Scan(1 << 40)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		merged, _ := csr.Merge(base, batch) // Merge is pure: loop freely
		_ = merged
	}
}

func feedSynthetic(fe *deltastore.Store, n int, nodeRange uint64) {
	for i := 0; i < n; i++ {
		fe.Capture(&delta.TxDelta{
			TS: mvto.TS(i + 1),
			Nodes: []delta.NodeDelta{{
				Node: uint64(i) % nodeRange,
				Ins:  []delta.Edge{{Dst: uint64(i*7) % nodeRange, W: 1}},
			}},
		})
	}
}

// ---- Fig 9: CSR rebuild and copy ----

func BenchmarkFig9Rebuild(b *testing.B) {
	for _, sf := range []float64{1, 3} {
		b.Run(fmt.Sprintf("SF%v", sf), func(b *testing.B) {
			s, _, ts := benchGraph(b, sf, 25)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				csr.Build(s, ts)
			}
		})
	}
}

func BenchmarkFig9CopyVolatile(b *testing.B) {
	s, _, ts := benchGraph(b, 3, 25)
	c := csr.Build(s, ts)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Copy()
	}
}

func BenchmarkFig9CopyPersistent(b *testing.B) {
	s, _, ts := benchGraph(b, 3, 25)
	c := csr.Build(s, ts)
	dir := b.TempDir()
	poolSize := c.Bytes()*64 + (64 << 20)
	var pool *pmem.Pool
	var totalSim float64
	gen := 0
	open := func() {
		b.StopTimer()
		if pool != nil {
			totalSim += float64(pool.SimTime())
			pool.Close()
		}
		var err error
		pool, err = pmem.Create(filepath.Join(dir, fmt.Sprintf("csr%d.pool", gen)), poolSize, sim.DefaultPMem())
		if err != nil {
			b.Fatal(err)
		}
		gen++
		b.StartTimer()
	}
	open()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := csr.PersistTo(pool, c); err != nil {
			open() // pool exhausted: rotate (untimed) and retry
			if _, err := csr.PersistTo(pool, c); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.StopTimer()
	totalSim += float64(pool.SimTime())
	pool.Close()
	b.ReportMetric(totalSim/float64(b.N), "sim-ns/op")
}

// ---- Fig 11: volatile vs persistent delta store ----

func BenchmarkFig11Append(b *testing.B) {
	b.Run("Volatile", func(b *testing.B) {
		fe := deltastore.NewVolatile()
		b.ResetTimer()
		feedSynthetic(fe, b.N, 1<<16)
	})
	b.Run("Persistent", func(b *testing.B) {
		const perStore = 100_000 // rotate stores so pool capacity stays bounded
		dir := b.TempDir()
		var pool *pmem.Pool
		var fe *deltastore.Store
		var totalSim float64
		gen := 0
		rotate := func() {
			b.StopTimer()
			if pool != nil {
				totalSim += float64(pool.SimTime())
				pool.Close()
			}
			var err error
			pool, err = pmem.Create(filepath.Join(dir, fmt.Sprintf("d%d.pool", gen)),
				perStore*256+(32<<20), sim.DefaultPMem())
			if err != nil {
				b.Fatal(err)
			}
			if fe, err = deltastore.NewPersistent(pool); err != nil {
				b.Fatal(err)
			}
			gen++
			b.StartTimer()
		}
		rotate()
		fed := 0
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if fed == perStore {
				rotate()
				fed = 0
			}
			fe.Capture(&delta.TxDelta{
				TS: mvto.TS(i + 1),
				Nodes: []delta.NodeDelta{{
					Node: uint64(i) % (1 << 16),
					Ins:  []delta.Edge{{Dst: uint64(i*7) % (1 << 16), W: 1}},
				}},
			})
			fed++
		}
		b.StopTimer()
		totalSim += float64(pool.SimTime())
		pool.Close()
		b.ReportMetric(totalSim/float64(b.N), "sim-ns/op")
	})
}

func BenchmarkFig11Scan(b *testing.B) {
	const batch = 20_000
	b.Run("Volatile", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			fe := deltastore.NewVolatile()
			feedSynthetic(fe, batch, 1<<16)
			b.StartTimer()
			fe.Scan(1 << 40)
		}
	})
	b.Run("Persistent", func(b *testing.B) {
		dir := b.TempDir()
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			pool, err := pmem.Create(filepath.Join(dir, fmt.Sprintf("d%d.pool", i)),
				batch*256+(16<<20), sim.DefaultPMem())
			if err != nil {
				b.Fatal(err)
			}
			fe, err := deltastore.NewPersistent(pool)
			if err != nil {
				b.Fatal(err)
			}
			feedSynthetic(fe, batch, 1<<16)
			b.StartTimer()
			fe.Scan(1 << 40)
			b.StopTimer()
			pool.Close()
			os.Remove(filepath.Join(dir, fmt.Sprintf("d%d.pool", i)))
			b.StartTimer()
		}
	})
}

// ---- Fig 12: DELTA_FE vs relational conversion R ----

func BenchmarkFig12Append(b *testing.B) {
	for _, k := range []captKind{captDeltaFE, captR} {
		b.Run(k.String(), func(b *testing.B) {
			benchUpdateOps(b, 0, true, workload.HiDeg, k)
		})
	}
}

func BenchmarkFig12Scan(b *testing.B) {
	const batch = 20_000
	b.Run("DELTA_FE", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			fe := deltastore.NewVolatile()
			feedSynthetic(fe, batch, 1<<14)
			b.StartTimer()
			fe.Scan(1 << 40)
		}
	})
	b.Run("R", func(b *testing.B) {
		// deg 32 models the HiDeg regime where R's full-object rows carry
		// real adjacency payloads (the data-volume cost §6.8 describes).
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			rs := relstore.New(flatAdj{deg: 32})
			for j := 0; j < batch; j++ {
				rs.Capture(&delta.TxDelta{TS: mvto.TS(j + 1), Nodes: []delta.NodeDelta{{
					Node: uint64(j) % (1 << 14),
					Ins:  []delta.Edge{{Dst: uint64(j*7) % (1 << 14), W: 1}},
				}}})
			}
			b.StartTimer()
			rs.Scan(1 << 40)
		}
	})
}

// ---- Table 1: CPU (Sortledton) analytics vs simulated-GPU kernels ----

func table1Graph(b *testing.B) *csr.CSR {
	b.Helper()
	ds := ldbc.GenerateRMAT(ldbc.RMATConfig{Scale: 13, Seed: 1})
	s := graph.NewStore()
	ts, err := ds.Load(s)
	if err != nil {
		b.Fatal(err)
	}
	return csr.Build(s, ts)
}

func BenchmarkTable1SortledtonCPU(b *testing.B) {
	base := table1Graph(b)
	sl := sortledton.FromCSR(base)
	for _, algo := range []string{"BFS", "PR", "SSSP"} {
		b.Run(algo, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				switch algo {
				case "BFS":
					analytics.BFS(sl, 0)
				case "PR":
					analytics.PageRank(sl, 10, 0.85)
				case "SSSP":
					analytics.SSSP(sl, 0)
				}
			}
		})
	}
}

func BenchmarkTable1GPUKernelsSim(b *testing.B) {
	base := table1Graph(b)
	dev := gpu.DefaultA100()
	view := analytics.CSRGraph{C: base}
	for _, algo := range []struct {
		name  string
		class string
		run   func() analytics.WorkStats
	}{
		{"BFS", sim.KernelBFS, func() analytics.WorkStats { _, w := analytics.BFS(view, 0); return w }},
		{"PR", sim.KernelPageRank, func() analytics.WorkStats { _, w := analytics.PageRank(view, 10, 0.85); return w }},
		{"SSSP", sim.KernelSSSP, func() analytics.WorkStats { _, w := analytics.SSSP(view, 0); return w }},
	} {
		b.Run(algo.name, func(b *testing.B) {
			work := algo.run()
			var total sim.Duration
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				d, err := dev.Launch(algo.class, work.Edges)
				if err != nil {
					b.Fatal(err)
				}
				total += d
			}
			b.StopTimer()
			b.ReportMetric(float64(total)/float64(b.N), "sim-ns/op")
		})
	}
}

// ---- §6.6: the two propagation paths on pending deltas ----

func BenchmarkSec66DynamicIngest(b *testing.B) {
	s, _, ts := benchGraph(b, 1, 25)
	base := csr.Build(s, ts)
	fe := deltastore.NewVolatile()
	feedSynthetic(fe, fig10Batch, s.NumNodeSlots())
	batch := fe.Scan(1 << 40)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		g := dyngraph.FromCSR(base)
		b.StartTimer()
		g.ApplyBatch(batch)
	}
}

// ---- §6.4: cost model fitting and threshold decision ----

func BenchmarkCostModelFitAndThreshold(b *testing.B) {
	var cal costmodel.Calibration
	for i := 1; i <= 64; i++ {
		n := float64(i * 1000)
		cal.AddScan(n, 0.01+2e-6*n)
		cal.AddModify(n, 0.002+5e-7*n)
		e := float64(i) * 1e5
		cal.AddCopy(e, 0.005+5e-8*e)
		cal.AddRebuild(e, 0.05+1.5e-6*e)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m, err := cal.Fit()
		if err != nil {
			b.Fatal(err)
		}
		if m.Threshold(1e7) == 0 {
			b.Fatal("degenerate threshold")
		}
	}
}

// ---- Ablations (DESIGN.md §5) ----

// AblationLayout: DELTA_FE's CSR-like shared arrays vs per-delta heap
// slices with a global lock (NaiveStore). Same semantics, different layout
// and append path.
func BenchmarkAblationLayoutAppend(b *testing.B) {
	deltas := makeTxDeltas(4096)
	b.Run("CSR-like", func(b *testing.B) {
		fe := deltastore.NewVolatile()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			fe.Capture(deltas[i%len(deltas)])
		}
	})
	b.Run("Naive", func(b *testing.B) {
		nv := deltastore.NewNaive()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			nv.Capture(deltas[i%len(deltas)])
		}
	})
}

func BenchmarkAblationLayoutParallelAppend(b *testing.B) {
	deltas := makeTxDeltas(4096)
	b.Run("CSR-like", func(b *testing.B) {
		fe := deltastore.NewVolatile()
		b.RunParallel(func(pb *testing.PB) {
			i := 0
			for pb.Next() {
				fe.Capture(deltas[i%len(deltas)])
				i++
			}
		})
	})
	b.Run("Naive", func(b *testing.B) {
		nv := deltastore.NewNaive()
		b.RunParallel(func(pb *testing.PB) {
			i := 0
			for pb.Next() {
				nv.Capture(deltas[i%len(deltas)])
				i++
			}
		})
	})
}

// AblationParallelMerge: the parallel three-phase CSR merge vs the serial
// Algorithm 2 on a ≥500k-delta batch, at several worker counts. `make
// bench-record` stores this series; `make verify-bench` guards the 8-worker
// speedup against regression (on multi-core hardware).
func BenchmarkAblationParallelMerge(b *testing.B) {
	const batchN = 500_000
	s, _, ts := benchGraph(b, 1, 25)
	base := csr.Build(s, ts)
	fe := deltastore.NewVolatile()
	feedSynthetic(fe, batchN, s.NumNodeSlots())
	batch := fe.ScanWorkers(1<<40, 1)
	b.Run("serial", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			merged, _ := csr.MergeSerial(base, batch)
			_ = merged
		}
	})
	for _, w := range []int{2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				merged, _ := csr.MergeWorkers(base, batch, w)
				_ = merged
			}
		})
	}
}

// AblationParallelScan: pass-2 grouping of the delta store scan, serial vs
// bucketed parallel, on a ≥500k-record store.
func BenchmarkAblationParallelScan(b *testing.B) {
	const batchN = 500_000
	for _, w := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				fe := deltastore.NewVolatile()
				feedSynthetic(fe, batchN, 1<<16)
				b.StartTimer()
				fe.ScanWorkers(1<<40, w)
			}
		})
	}
}

// AblationAppendOnly: DELTA_FE's lookup-free appends vs the R store's keyed
// in-place-updateable rows.
func BenchmarkAblationAppendOnly(b *testing.B) {
	deltas := makeTxDeltas(4096)
	b.Run("AppendOnly", func(b *testing.B) {
		fe := deltastore.NewVolatile()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			fe.Capture(deltas[i%len(deltas)])
		}
	})
	b.Run("Updateable", func(b *testing.B) {
		rs := relstore.New(flatAdj{deg: 4})
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			rs.Capture(deltas[i%len(deltas)])
		}
	})
}

// AblationCoalesce: one coalesced device transfer per batch vs one transfer
// per combined delta (§5.4: "copy them to the GPU memory all at once").
// Reported as simulated nanoseconds per batch.
func BenchmarkAblationCoalesce(b *testing.B) {
	fe := deltastore.NewVolatile()
	feedSynthetic(fe, 10_000, 1<<14)
	batch := fe.Scan(1 << 40)
	b.Run("Coalesced", func(b *testing.B) {
		dev := gpu.DefaultA100()
		for i := 0; i < b.N; i++ {
			dev.HostToDevice(batch.TransferBytes())
		}
		b.ReportMetric(float64(dev.SimTime())/float64(b.N), "sim-ns/op")
	})
	b.Run("PerDelta", func(b *testing.B) {
		dev := gpu.DefaultA100()
		for i := 0; i < b.N; i++ {
			for j := range batch.Deltas {
				d := &batch.Deltas[j]
				dev.HostToDevice(32 + int64(len(d.Ins))*16 + int64(len(d.Del))*8)
			}
		}
		b.ReportMetric(float64(dev.SimTime())/float64(b.N), "sim-ns/op")
	})
}

// AblationChunks: the chunked delta table vs a contiguous growing slice
// (reallocation and copying on growth).
func BenchmarkAblationChunks(b *testing.B) {
	type rec struct{ a, b, c, d, e, f uint64 }
	b.Run("Chunked", func(b *testing.B) {
		fe := deltastore.NewVolatile()
		b.ReportAllocs()
		b.ResetTimer()
		feedSynthetic(fe, b.N, 1<<16)
	})
	b.Run("GrowingSlice", func(b *testing.B) {
		var recs []rec
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			recs = append(recs, rec{a: uint64(i)})
		}
		_ = recs
	})
}

// AblationParallelCommit: the full transactional path under concurrent
// clients, DELTA_FE's contention-free appends vs the naive global-lock
// store — §5.1 benefit 2 measured end to end.
func BenchmarkAblationParallelCommit(b *testing.B) {
	for _, variant := range []string{"DELTA_FE", "NaiveLock"} {
		b.Run(variant, func(b *testing.B) {
			s, ds, ts := benchGraph(b, 1, 50)
			if variant == "DELTA_FE" {
				s.AddCapturer(deltastore.NewVolatile())
			} else {
				s.AddCapturer(deltastore.NewNaive())
			}
			g := workload.NewGenerator(
				workload.DegreeWindow(s, ts, ds.Persons, workload.HiDeg, len(ds.Persons)/5),
				ds.Posts, 42)
			ops := g.Ops(workload.InsertRel, b.N)
			b.ResetTimer()
			workload.RunParallel(s, ops, 8)
		})
	}
}

// flatAdj is a fixed-degree adjacency source for benches that exercise the
// R store without a backing graph.
type flatAdj struct{ deg int }

func (f flatAdj) OutEdgesAt(node uint64, _ mvto.TS) []delta.Edge {
	out := make([]delta.Edge, f.deg)
	for i := range out {
		out[i] = delta.Edge{Dst: node + uint64(i) + 1, W: 1}
	}
	return out
}

func makeTxDeltas(n int) []*delta.TxDelta {
	out := make([]*delta.TxDelta, n)
	for i := range out {
		out[i] = &delta.TxDelta{TS: mvto.TS(i + 1), Nodes: []delta.NodeDelta{{
			Node: uint64(i) % 997,
			Ins:  []delta.Edge{{Dst: uint64(i * 3), W: 1}, {Dst: uint64(i*3 + 1), W: 2}},
			Del:  []uint64{uint64(i * 5)},
		}}}
	}
	return out
}

// ShardScaling: the sharded engine's two costs vs shard count (DESIGN.md
// §5h). commit measures the transactional write path — at N=1 the unsharded
// engine, at N>1 mostly cross-shard edges paying the full 2PC prepare/decide
// round. stitch measures a composite analytics run: per-shard replica
// acquisition behind the watermark barrier plus host-side CSR stitching.
func BenchmarkShardScaling(b *testing.B) {
	for _, shards := range []int{1, 2, 4, 8} {
		open := func(b *testing.B) (*DB, []uint64) {
			b.Helper()
			db, err := Open(Options{Shards: shards})
			if err != nil {
				b.Fatalf("Open: %v", err)
			}
			var ids []uint64
			add := func(tx interface {
				AddNode(string, map[string]Value) (uint64, error)
			}) {
				for i := 0; i < 256; i++ {
					id, err := tx.AddNode("V", nil)
					if err != nil {
						b.Fatalf("AddNode: %v", err)
					}
					ids = append(ids, id)
				}
			}
			if shards > 1 {
				tx, err := db.BeginSharded()
				if err != nil {
					b.Fatalf("BeginSharded: %v", err)
				}
				add(tx)
				if err := tx.Commit(); err != nil {
					b.Fatalf("Commit: %v", err)
				}
			} else {
				tx := db.Begin()
				add(tx)
				if err := tx.Commit(); err != nil {
					b.Fatalf("Commit: %v", err)
				}
			}
			return db, ids
		}

		b.Run(fmt.Sprintf("commit/shards=%d", shards), func(b *testing.B) {
			db, ids := open(b)
			defer db.Close()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				src := ids[i%len(ids)]
				dst := ids[(i*7+1)%len(ids)]
				if shards > 1 {
					tx, err := db.BeginSharded()
					if err != nil {
						b.Fatalf("BeginSharded: %v", err)
					}
					if _, err := tx.AddRel(src, dst, "e", 1); err != nil {
						tx.Abort() // duplicate (src,dst) pair: skip, keep timing
						continue
					}
					if err := tx.Commit(); err != nil {
						b.Fatalf("Commit: %v", err)
					}
				} else {
					tx := db.Begin()
					if _, err := tx.AddRel(src, dst, "e", 1); err != nil {
						tx.Abort()
						continue
					}
					if err := tx.Commit(); err != nil {
						b.Fatalf("Commit: %v", err)
					}
				}
			}
		})

		b.Run(fmt.Sprintf("stitch/shards=%d", shards), func(b *testing.B) {
			db, ids := open(b)
			defer db.Close()
			load := func(tx interface {
				AddRel(uint64, uint64, string, float64) (uint64, error)
			}) {
				for i := 0; i+1 < len(ids); i++ {
					if _, err := tx.AddRel(ids[i], ids[i+1], "e", 1); err != nil {
						b.Fatalf("AddRel: %v", err)
					}
				}
			}
			if shards > 1 {
				tx, err := db.BeginSharded()
				if err != nil {
					b.Fatalf("BeginSharded: %v", err)
				}
				load(tx)
				if err := tx.Commit(); err != nil {
					b.Fatalf("Commit: %v", err)
				}
			} else {
				tx := db.Begin()
				load(tx)
				if err := tx.Commit(); err != nil {
					b.Fatalf("Commit: %v", err)
				}
			}
			if err := db.StartEngine(); err != nil {
				b.Fatalf("StartEngine: %v", err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := db.RunAnalytics(BFS, NodeID(ids[0])); err != nil {
					b.Fatalf("RunAnalytics: %v", err)
				}
			}
		})
	}
}
